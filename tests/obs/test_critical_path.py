"""Span-tree analysis (repro.obs.critical_path)."""

from repro.obs import (
    critical_path,
    phase_breakdown,
    render_breakdown,
    render_profile,
    self_time_us,
    span_profile,
)
from repro.obs.critical_path import covered_us
from repro.sim import Simulator


def tracer_with(spans):
    """Build a tracer holding ``spans``: (category, name, start_us,
    end_us-or-None, parent-key-or-None) tuples, keyed by name.  The sim
    clock is driven through each begin/end time in order."""
    sim = Simulator(seed=0)
    trace = sim.trace
    trace.enable("*")
    ids = {}

    def begin(key, category, parent):
        # "name#2"-style keys let two spans share a display name.
        ids[key] = trace.begin_span(
            category, key.split("#")[0], parent=ids.get(parent)
        )

    def end(key):
        trace.end_span(ids[key])

    events = []
    for category, name, start, end_us, parent in spans:
        events.append((start, 0, begin, (name, category, parent)))
        if end_us is not None:
            events.append((end_us, 1, end, (name,)))
    for at, _, fn, fn_args in sorted(events, key=lambda e: (e[0], e[1])):
        sim.schedule(at - sim.now, fn, *fn_args)
        sim.run()
    return trace, ids


class TestSelfTime:
    def test_leaf_self_time_is_duration(self):
        trace, ids = tracer_with([("m", "root", 0, 100, None)])
        span = trace.span(ids["root"])
        assert self_time_us(trace, span) == 100
        assert covered_us(trace, span) == 0

    def test_children_subtract_from_self_time(self):
        trace, ids = tracer_with([
            ("m", "root", 0, 100, None),
            ("m", "a", 10, 40, "root"),
            ("m", "b", 60, 90, "root"),
        ])
        root = trace.span(ids["root"])
        assert covered_us(trace, root) == 60
        assert self_time_us(trace, root) == 40

    def test_overlapping_children_count_once(self):
        trace, ids = tracer_with([
            ("m", "root", 0, 100, None),
            ("m", "a", 10, 50, "root"),
            ("m", "b", 30, 70, "root"),
        ])
        root = trace.span(ids["root"])
        assert covered_us(trace, root) == 60  # union of [10,50] and [30,70]
        assert self_time_us(trace, root) == 40

    def test_open_span_has_no_self_time(self):
        trace, ids = tracer_with([("m", "root", 0, None, None)])
        assert self_time_us(trace, trace.span(ids["root"])) is None

    def test_child_clipped_to_parent(self):
        # A child outliving its parent only covers the overlap.
        trace, ids = tracer_with([
            ("m", "root", 0, 50, None),
            ("m", "late", 40, 120, "root"),
        ])
        root = trace.span(ids["root"])
        assert covered_us(trace, root) == 10
        assert self_time_us(trace, root) == 40


class TestCriticalPath:
    def test_descends_into_latest_finishing_child(self):
        trace, ids = tracer_with([
            ("m", "root", 0, 100, None),
            ("m", "short", 10, 30, "root"),
            ("m", "long", 40, 95, "root"),
            ("m", "leaf", 50, 90, "long"),
        ])
        names = [s.name for s in critical_path(trace, ids["root"])]
        assert names == ["root", "long", "leaf"]

    def test_unknown_root_gives_empty_path(self):
        trace, _ = tracer_with([("m", "root", 0, 10, None)])
        assert critical_path(trace, 999) == []

    def test_open_children_are_skipped(self):
        trace, ids = tracer_with([
            ("m", "root", 0, 100, None),
            ("m", "open", 10, None, "root"),
            ("m", "done", 20, 60, "root"),
        ])
        names = [s.name for s in critical_path(trace, ids["root"])]
        assert names == ["root", "done"]


class TestPhaseBreakdown:
    def test_phases_sum_exactly_for_disjoint_children(self):
        trace, ids = tracer_with([
            ("m", "root", 0, 100, None),
            ("m", "a#1", 0, 30, "root"),
            ("m", "a#2", 30, 50, "root"),
            ("m", "b", 50, 80, "root"),
        ])
        # Same-name spans collapse into one phase ("a" twice).
        b = phase_breakdown(trace, ids["root"])
        assert b["total_us"] == 100
        by_name = {p["name"]: p["us"] for p in b["phases"]}
        assert by_name == {"a": 50, "b": 30, "(self)": 20}
        assert sum(p["us"] for p in b["phases"]) == b["total_us"]
        assert abs(sum(p["share"] for p in b["phases"]) - 1.0) < 0.001

    def test_unknown_or_open_root(self):
        trace, ids = tracer_with([("m", "open", 0, None, None)])
        assert phase_breakdown(trace, 999)["phases"] == []
        assert phase_breakdown(trace, ids["open"])["phases"] == []

    def test_render_breakdown_mentions_phases(self):
        trace, ids = tracer_with([
            ("m", "root", 0, 100, None),
            ("m", "a", 0, 60, "root"),
        ])
        text = render_breakdown(phase_breakdown(trace, ids["root"]))
        assert "root" in text and "a" in text and "(self)" in text


class TestSpanProfile:
    def test_aggregates_by_key_and_category(self):
        trace, ids = tracer_with([
            ("mig", "root", 0, 100, None),
            ("ipc", "send", 10, 30, "root"),
            ("ipc", "send", 40, 50, "root"),
            ("ipc", "recv", 60, 65, "root"),
        ])
        profile = span_profile(trace)
        assert profile["spans"] == 4
        assert profile["open_spans"] == 0
        send = profile["by_key"]["ipc/send"]
        assert send["count"] == 2
        assert send["total_us"] == 30
        assert send["max_us"] == 20
        ipc = profile["by_category"]["ipc"]
        assert ipc["count"] == 3
        assert ipc["total_us"] == 35
        # Root delegated 35us to ipc; its self time shows that.
        assert profile["by_key"]["mig/root"]["self_us"] == 65

    def test_subtree_profile_excludes_siblings(self):
        trace, ids = tracer_with([
            ("m", "a", 0, 50, None),
            ("m", "b", 60, 90, None),
            ("m", "a-child", 10, 20, "a"),
        ])
        profile = span_profile(trace, root_id=ids["a"])
        assert set(profile["by_key"]) == {"m/a", "m/a-child"}

    def test_open_spans_counted_not_timed(self):
        trace, ids = tracer_with([
            ("m", "done", 0, 50, None),
            ("m", "open", 10, None, None),
        ])
        profile = span_profile(trace)
        assert profile["open_spans"] == 1
        assert "m/open" not in profile["by_key"]

    def test_render_profile(self):
        trace, _ = tracer_with([("m", "root", 0, 100, None)])
        assert "m/root" in render_profile(span_profile(trace))
        assert render_profile(span_profile(trace, root_id=None)) != ""

    def test_empty_tracer_profile(self):
        sim = Simulator(seed=0)
        profile = span_profile(sim.trace)
        assert profile == {"spans": 0, "open_spans": 0,
                           "by_key": {}, "by_category": {}}
        assert render_profile(profile) == "(no ended spans)"


class TestMigrationTrace:
    def test_real_freeze_span_decomposes_to_stats(self):
        # The real thing: phases of every freeze span sum exactly to
        # MigrationStats.freeze_us (residual-copy children + self).
        from repro.__main__ import _migrate_scenario

        def setup(cluster):
            cluster.sim.trace.enable("migration")

        cluster, stats = _migrate_scenario("tex", 0, setup)
        trace = cluster.sim.trace
        freeze = [s for s in trace.find_spans("migration", "freeze")
                  if s.end_us is not None]
        assert freeze
        total = sum(
            sum(p["us"] for p in phase_breakdown(trace, s.span_id)["phases"])
            for s in freeze
        )
        assert total == stats.freeze_us
