"""End-to-end observability of a migration: causal span tree, unified
metrics, and the no-trajectory-change guarantee."""

from repro.cluster.monitor import ClusterMonitor
from repro.execution import ProgramImage, ProgramRegistry, exec_program
from repro.kernel.process import Compute, TouchPages
from repro.migration.migrateprog import migrate_program


def churner(iterations=150, pages_per_burst=2, compute_us=50_000, space_pages=48):
    def body(ctx):
        for i in range(iterations):
            yield Compute(compute_us)
            first = (i * pages_per_burst) % (space_pages - pages_per_burst)
            yield TouchPages(range(first, first + pages_per_burst))
        return 0

    return body


def run_migration_scenario(seed=0, instrument=None):
    """Start a churner remotely on ws1 and migrate it off; returns
    (cluster, reply) where reply carries the MigrationStats."""
    from repro.cluster import build_cluster

    registry = ProgramRegistry()
    registry.register(ProgramImage(
        name="churner", image_bytes=64 * 1024, space_bytes=128 * 1024,
        code_bytes=48 * 1024, body_factory=churner(),
    ))
    cluster = build_cluster(n_workstations=3, seed=seed, registry=registry)
    if instrument is not None:
        instrument(cluster)
    state = {}

    def session(ctx):
        pid, pm = yield from exec_program(ctx, "churner", where="ws1")
        state["pid"] = pid

    cluster.spawn_session(cluster.workstations[0], session)
    cluster.run(until_us=2_000_000)
    results = []

    def migrator(ctx):
        reply = yield from migrate_program(state["pid"])
        results.append(reply)

    cluster.spawn_session(cluster.workstations[0], migrator, name="migrator")
    cluster.run(until_us=60_000_000)
    assert results and results[0]["ok"], results
    return cluster, results[0]


def enable_all(cluster):
    cluster.sim.trace.enable("*")
    cluster.sim.metrics.enable()


class TestCausalTree:
    def test_freeze_span_contains_exactly_the_residual_copies(self):
        cluster, reply = run_migration_scenario(instrument=enable_all)
        trace = cluster.sim.trace
        stats = reply["stats"]

        (freeze,) = trace.find_spans("migration", "freeze")
        children = trace.children_of(freeze.span_id)
        assert children, "freeze span has no children"
        assert all(s.name == "residual-copy" for s in children)
        assert len(children) == stats.n_spaces
        for child in children:
            assert freeze.contains(child)

    def test_freeze_span_duration_equals_stats_freeze_us(self):
        cluster, reply = run_migration_scenario(instrument=enable_all)
        (freeze,) = cluster.sim.trace.find_spans("migration", "freeze")
        assert freeze.duration_us == reply["stats"].freeze_us

    def test_migrate_root_spans_phase_chain(self):
        cluster, reply = run_migration_scenario(instrument=enable_all)
        trace = cluster.sim.trace
        (root,) = trace.find_spans("migration", "migrate")
        phases = [s.name for s in trace.children_of(root.span_id)]
        assert phases == ["precopy", "freeze", "rebind"]
        (precopy,) = trace.find_spans("migration", "precopy")
        rounds = trace.children_of(precopy.span_id)
        assert len(rounds) == reply["stats"].precopy_rounds
        assert all(s.name == "precopy-round" for s in rounds)
        assert root.data["outcome"] == "ok"

    def test_ipc_spans_close_with_outcomes(self):
        cluster, _ = run_migration_scenario(instrument=enable_all)
        sends = cluster.sim.trace.find_spans("ipc")
        assert sends, "no IPC spans recorded"
        ended = [s for s in sends if s.end_us is not None]
        assert ended and all(s.data.get("outcome") for s in ended)


class TestUnifiedMetrics:
    def test_migration_metrics_recorded(self):
        cluster, reply = run_migration_scenario(instrument=enable_all)
        m = cluster.sim.metrics
        stats = reply["stats"]
        assert m.aggregate("mig.migrations") == 1
        assert m.aggregate("mig.freeze_us") == stats.freeze_us
        assert m.aggregate("mig.rounds") == stats.precopy_rounds
        assert m.aggregate("mig.residual_bytes") == stats.residual_bytes

    def test_layers_all_report(self):
        cluster, _ = run_migration_scenario(instrument=enable_all)
        m = cluster.sim.metrics
        assert m.aggregate("ipc.sends") > 0
        assert m.aggregate("sched.context_switches") > 0
        assert m.aggregate("kernel.freezes") == 1
        assert m.aggregate("kernel.unfreezes") == 1
        assert m.aggregate("net.tx_packets") == cluster.net.packets_sent
        assert m.aggregate("ipc.copy_bytes") > 0
        latency = m.aggregate("ipc.send_latency_us")
        assert latency.count > 0

    def test_monitor_exposes_registry(self):
        cluster, _ = run_migration_scenario(instrument=enable_all)
        monitor = ClusterMonitor(cluster)
        snap = monitor.metrics()
        assert snap["cluster"]["ipc.sends"] > 0
        assert "ipc.sends" in monitor.render_metrics()


class TestZeroCost:
    def test_instrumentation_does_not_change_trajectory(self):
        """Enabled metrics+tracing must not alter the simulated run."""
        plain, plain_reply = run_migration_scenario(seed=7)
        traced, traced_reply = run_migration_scenario(seed=7, instrument=enable_all)
        assert traced.sim.now == plain.sim.now
        assert traced.sim.event_count == plain.sim.event_count
        assert traced_reply["stats"].freeze_us == plain_reply["stats"].freeze_us
        assert traced_reply["dest"] == plain_reply["dest"]
        # And the uninstrumented run recorded nothing.
        assert plain.sim.trace.spans == []
        assert not plain.sim.metrics.active
