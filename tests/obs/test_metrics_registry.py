"""Unit tests for the unified metrics registry (repro.obs.metrics)."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_US,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("x", "ws0")
        c.inc()
        c.inc(41)
        assert c.value == 42
        assert c.snapshot() == 42

    def test_gauge_tracks_high_water(self):
        g = Gauge("depth", "ws0")
        g.set(3)
        g.set(9)
        g.set(1)
        assert g.value == 1
        assert g.max_value == 9

    def test_histogram_buckets_inclusive_upper_bound(self):
        h = Histogram("lat", "ws0", bounds=(10, 100))
        for v in (5, 10, 11, 100, 5000):
            h.observe(v)
        snap = h.snapshot()
        # Bounds are inclusive upper edges; beyond-last is the open bucket.
        assert snap["buckets"]["10"] == 2
        assert snap["buckets"]["100"] == 2
        assert snap["buckets"]["+inf"] == 1
        assert h.count == 5
        assert h.min_value == 5
        assert h.max_value == 5000

    def test_histogram_mean_and_quantile(self):
        h = Histogram("lat", "ws0", bounds=(10, 100, 1000))
        for v in (1, 2, 3, 50):
            h.observe(v)
        assert h.mean == pytest.approx((1 + 2 + 3 + 50) / 4)
        # Interpolated within the bucket: rank 2 of 3 in [min=1, 10]...
        assert h.quantile(0.5) == pytest.approx(7.0)
        # ...rank 0.2 of 1 in (10, 100]...
        assert h.quantile(0.8) == pytest.approx(28.0)
        # ...and a high quantile clamps to the observed max rather than
        # extrapolating toward the bucket's upper bound.
        assert h.quantile(0.99) == 50

    def test_histogram_quantile_edges(self):
        empty = Histogram("lat", "ws0", bounds=(10, 100))
        assert empty.quantile(0.5) is None

        h = Histogram("lat", "ws0", bounds=(10, 100, 1000))
        for v in (1, 2, 3, 50):
            h.observe(v)
        # q=0 is the smallest observation, q=1 clamps to the largest.
        assert h.quantile(0) == 1
        assert h.quantile(1) == 50
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_histogram_quantile_single_open_bucket_value(self):
        h = Histogram("lat", "ws0", bounds=(10,))
        h.observe(500)  # lands in the open-ended bucket
        assert h.quantile(0) == 500
        assert h.quantile(0.5) == 500
        assert h.quantile(1) == 500

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("lat", "ws0", bounds=(10, 10))
        with pytest.raises(ValueError):
            Histogram("lat", "ws0", bounds=(100, 10))


class TestRegistry:
    def test_disabled_by_default(self):
        m = MetricsRegistry()
        assert not m.active
        m.enable()
        assert m.active
        m.disable()
        assert not m.active

    def test_get_or_create_is_idempotent(self):
        m = MetricsRegistry()
        a = m.counter("ipc.sends", "ws0")
        b = m.counter("ipc.sends", "ws0")
        assert a is b
        assert m.counter("ipc.sends", "ws1") is not a

    def test_kind_mismatch_raises(self):
        m = MetricsRegistry()
        m.counter("x", "ws0")
        with pytest.raises(TypeError):
            m.gauge("x", "ws0")

    def test_aggregate_counters_sum_across_hosts(self):
        m = MetricsRegistry()
        m.counter("pkts", "ws0").inc(3)
        m.counter("pkts", "ws1").inc(4)
        assert m.aggregate("pkts") == 7

    def test_aggregate_gauges_report_sum_and_max(self):
        m = MetricsRegistry()
        m.gauge("depth", "ws0").set(2)
        m.gauge("depth", "ws1").set(5)
        agg = m.aggregate("depth")
        assert agg["sum"] == 7
        assert agg["max"] == 5

    def test_aggregate_histograms_merge_buckets(self):
        m = MetricsRegistry()
        m.histogram("lat", "ws0", bounds=(10, 100)).observe(5)
        m.histogram("lat", "ws1", bounds=(10, 100)).observe(500)
        agg = m.aggregate("lat")
        assert agg.count == 2
        assert agg.counts == [1, 0, 1]
        assert agg.min_value == 5 and agg.max_value == 500

    def test_snapshot_and_json_roundtrip(self):
        m = MetricsRegistry()
        m.counter("pkts", "ws0").inc(3)
        m.histogram("lat", "ws0").observe(12)
        snap = json.loads(m.to_json())
        assert snap["per_host"]["ws0"]["pkts"] == 3
        assert "cluster" in snap and "pkts" in snap["cluster"]

    def test_render_lists_every_metric_and_host(self):
        m = MetricsRegistry()
        m.counter("pkts", "ws0").inc(3)
        m.gauge("depth", "ws1").set(2)
        text = m.render()
        assert "pkts" in text and "depth" in text
        assert "ws0" in text and "ws1" in text and "cluster" in text

    def test_reset_zeroes_but_keeps_instruments(self):
        m = MetricsRegistry()
        c = m.counter("pkts", "ws0")
        c.inc(9)
        m.reset()
        assert m.counter("pkts", "ws0") is c
        assert c.value == 0

    def test_default_histogram_bounds_are_latencies(self):
        m = MetricsRegistry()
        h = m.histogram("lat", "ws0")
        assert tuple(h.bounds) == LATENCY_BUCKETS_US
