"""RunReport artifacts and the diff/attribution engine."""

import json

import pytest

from repro.errors import SimulationError
from repro.obs import diff_reports, new_report, render_diff, subsystem_of
from repro.obs.report import (
    RUN_REPORT_VERSION,
    load_report,
    render_report,
    write_report,
)


def report_with(cluster_metrics, kpis=None, toggles_on=False):
    report = new_report("test", seed=0)
    if toggles_on:
        report["toggles"]["copy_plane"] = {
            k: True for k in report["toggles"]["copy_plane"]
        }
    report["metrics"] = {"per_host": {}, "cluster": cluster_metrics,
                         "sim_time_us": 1000}
    report["kpis"] = dict(kpis or {})
    return report


class TestEnvelope:
    def test_new_report_carries_version_and_toggles(self):
        report = new_report("migration", seed=7, config={"program": "tex"})
        assert report["run_report_version"] == RUN_REPORT_VERSION
        assert report["seed"] == 7
        assert report["config"] == {"program": "tex"}
        assert "fastpath" in report["toggles"]
        assert "copy_plane" in report["toggles"]

    def test_write_load_round_trip(self, tmp_path):
        report = report_with({"ipc.sends": 5})
        path = tmp_path / "r.json"
        write_report(report, str(path))
        assert load_report(str(path)) == json.loads(json.dumps(report))

    def test_load_rejects_non_report_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(SimulationError):
            load_report(str(path))

    def test_load_rejects_future_version(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps(
            {"run_report_version": RUN_REPORT_VERSION + 1}
        ))
        with pytest.raises(SimulationError):
            load_report(str(path))

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(SimulationError):
            load_report(str(tmp_path / "absent.json"))

    def test_render_report_mentions_kpis(self):
        report = report_with({}, kpis={"freeze_us": 12345})
        text = render_report(report)
        assert "freeze_us" in text
        assert "12345" in text


class TestSubsystems:
    def test_prefix_buckets(self):
        assert subsystem_of("ipc.sends") == "ipc"
        assert subsystem_of("copy.bursts") == "copy"
        assert subsystem_of("mig.freeze_us") == "migration"
        assert subsystem_of("precopy.projected_residual") == "migration"
        assert subsystem_of("sched.cpu_us.remote") == "scheduler"
        assert subsystem_of("something.odd") == "other"


class TestDiff:
    def test_identical_reports_are_within_tolerance(self):
        a = report_with({"ipc.sends": 100, "mig.freeze_us": 5000})
        diff = diff_reports(a, a)
        assert diff["ok"]
        assert diff["total_time_delta_us"] == 0
        assert all(e["within"] for e in diff["metrics"].values())

    def test_small_drift_within_relative_tolerance(self):
        a = report_with({"ipc.sends": 1000})
        b = report_with({"ipc.sends": 1005})
        assert diff_reports(a, b, rel_tol=0.01)["ok"]
        assert not diff_reports(a, b, rel_tol=0.001)["ok"]

    def test_absolute_tolerance_floor(self):
        a = report_with({"net.tx_packets": 2})
        b = report_with({"net.tx_packets": 4})  # +100% but tiny
        assert not diff_reports(a, b, rel_tol=0.01)["ok"]
        assert diff_reports(a, b, rel_tol=0.01, abs_tol=5)["ok"]

    def test_time_delta_attributed_to_subsystem(self):
        a = report_with({"mig.freeze_us": 10_000, "ipc.sends": 50})
        b = report_with({"mig.freeze_us": 16_000, "ipc.sends": 50})
        diff = diff_reports(a, b)
        assert diff["subsystems"]["migration"]["time_delta_us"] == 6_000
        assert diff["total_time_delta_us"] == 6_000
        # Ranked first: migration moved time, nothing else moved at all.
        assert next(iter(diff["subsystems"])) == "migration"

    def test_histogram_total_counts_as_time_but_count_does_not(self):
        hist_a = {"count": 10, "total": 1_000, "mean": 100.0,
                  "min": 1, "max": 300, "buckets": {}}
        hist_b = {"count": 12, "total": 2_000, "mean": 166.7,
                  "min": 1, "max": 300, "buckets": {}}
        a = report_with({"ipc.send_latency_us": hist_a})
        b = report_with({"ipc.send_latency_us": hist_b})
        diff = diff_reports(a, b)
        assert diff["metrics"]["ipc.send_latency_us.total"]["delta"] == 1_000
        assert diff["metrics"]["ipc.send_latency_us.count"]["delta"] == 2
        assert diff["subsystems"]["ipc"]["time_delta_us"] == 1_000

    def test_gauge_aggregate_flattened(self):
        a = report_with({"sched.runq": {"sum": 3, "max": 2}})
        b = report_with({"sched.runq": {"sum": 5, "max": 4}})
        diff = diff_reports(a, b)
        assert diff["metrics"]["sched.runq.sum"]["delta"] == 2
        assert diff["metrics"]["sched.runq.max"]["delta"] == 2

    def test_metric_on_one_side_compared_against_zero(self):
        a = report_with({})
        b = report_with({"copy.bursts": 59})
        diff = diff_reports(a, b)
        entry = diff["metrics"]["copy.bursts"]
        assert entry["a"] == 0 and entry["b"] == 59
        assert not entry["within"]
        assert "copy.bursts" in diff["subsystems"]["copy"]["metrics"]

    def test_kpi_non_numeric_compared_by_equality(self):
        a = report_with({}, kpis={"success": True, "stop": "rounds"})
        b = report_with({}, kpis={"success": True, "stop": "adaptive"})
        diff = diff_reports(a, b)
        assert diff["kpis"]["success"]["within"]
        assert not diff["kpis"]["stop"]["within"]
        assert not diff["ok"]

    def test_toggle_mismatch_reported_but_not_gating(self):
        a = report_with({"ipc.sends": 10})
        b = report_with({"ipc.sends": 10}, toggles_on=True)
        diff = diff_reports(a, b)
        assert not diff["toggles"]["same"]
        assert diff["ok"]  # metrics agree; toggles are informational

    def test_wall_section_is_never_compared(self):
        a = report_with({"ipc.sends": 10})
        b = report_with({"ipc.sends": 10})
        a["wall"] = {"wall_s": 0.5, "sim_us_per_wall_s": 1_000_000}
        b["wall"] = {"wall_s": 9.9, "sim_us_per_wall_s": 7}
        diff = diff_reports(a, b)
        assert diff["ok"]
        assert not any("wall" in k for k in diff["metrics"])

    def test_render_flags_out_of_tolerance_rows(self):
        a = report_with({"mig.freeze_us": 10_000})
        b = report_with({"mig.freeze_us": 20_000})
        text = render_diff(diff_reports(a, b))
        assert "BEYOND TOLERANCE" in text
        assert "mig.freeze_us" in text
        assert "migration" in text
        ok_text = render_diff(diff_reports(a, a))
        assert "WITHIN TOLERANCE" in ok_text

    def test_diff_is_json_serializable(self):
        a = report_with({"mig.freeze_us": 10_000}, kpis={"success": True})
        diff = diff_reports(a, a)
        assert json.loads(json.dumps(diff)) == diff
