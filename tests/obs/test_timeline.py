"""Chrome trace_event export (repro.obs.timeline)."""

import json

from repro.obs import chrome_trace_events, export_timeline
from repro.obs.metrics import MetricsRegistry
from repro.sim import Simulator


def traced_sim():
    sim = Simulator(seed=0)
    sim.trace.enable("*")
    sid = sim.trace.begin_span("migration", "freeze", host="ws1", lhid=7)
    sim.schedule(500, lambda: sim.trace.end_span(sid))
    sim.schedule(100, lambda: sim.trace.record("net", "transmit",
                                               host="ws0", size=64))
    sim.run()
    return sim


class TestChromeEvents:
    def test_span_becomes_complete_event(self):
        sim = traced_sim()
        events = chrome_trace_events(sim.trace)
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 1
        (x,) = xs
        assert x["name"] == "freeze"
        assert x["cat"] == "migration"
        assert x["ts"] == 0 and x["dur"] == 500
        assert x["args"]["span_id"] == 1
        assert x["args"]["lhid"] == 7

    def test_record_becomes_instant_event(self):
        sim = traced_sim()
        instants = [e for e in chrome_trace_events(sim.trace)
                    if e["ph"] == "i" and e["name"] == "transmit"]
        assert len(instants) == 1
        assert instants[0]["ts"] == 100

    def test_one_pid_per_host(self):
        sim = traced_sim()
        events = chrome_trace_events(sim.trace)
        names = {e["args"]["name"]: e["pid"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        # pid 1 is the unattributed "sim" track; hosts follow, sorted.
        assert names["sim"] == 1
        assert set(names) == {"sim", "ws0", "ws1"}
        assert names["ws0"] < names["ws1"]

    def test_open_span_emitted_as_instant(self):
        sim = Simulator(seed=0)
        sim.trace.enable("*")
        sim.trace.begin_span("ipc", "send", host="ws0")
        events = chrome_trace_events(sim.trace)
        assert not [e for e in events if e["ph"] == "X"]
        opens = [e for e in events if e["ph"] == "i" and "(open)" in e["name"]]
        assert len(opens) == 1

    def test_parent_id_carried_in_args(self):
        sim = Simulator(seed=0)
        sim.trace.enable("*")
        root = sim.trace.begin_span("m", "root")
        child = sim.trace.begin_span("m", "child", parent=root)
        sim.trace.end_span(child)
        sim.trace.end_span(root)
        events = {e["name"]: e for e in chrome_trace_events(sim.trace)
                  if e["ph"] == "X"}
        assert events["child"]["args"]["parent_id"] == root
        assert "parent_id" not in events["root"]["args"]


class TestWindows:
    def test_half_open_window_on_records(self):
        sim = Simulator(seed=0)
        sim.trace.enable("*")
        for at in (100, 200, 300):
            sim.schedule(at - sim.now, lambda a=at: sim.trace.record(
                "net", f"t{a}"))
            sim.run()
        events = chrome_trace_events(sim.trace, since_us=100, until_us=300)
        names = [e["name"] for e in events if e["ph"] == "i"]
        # [100, 300): 100 and 200 in, 300 out.
        assert names == ["t100", "t200"]

    def test_spans_windowed_by_start_time(self):
        sim = Simulator(seed=0)
        sim.trace.enable("*")
        early = sim.trace.begin_span("m", "early")
        sim.schedule(500, lambda: sim.trace.end_span(early))
        sim.schedule(200, lambda: sim.trace.end_span(
            sim.trace.begin_span("m", "mid")))
        sim.run()
        names = [e["name"] for e in chrome_trace_events(
            sim.trace, since_us=100) if e["ph"] == "X"]
        # "early" started at 0, before the window, even though it ends
        # inside it; "mid" started (and ended) at 200.
        assert names == ["mid"]

    def test_export_timeline_passes_window_through(self):
        sim = traced_sim()  # span [0, 500], record at 100
        payload = export_timeline(sim.trace, since_us=101)
        assert all(e["ph"] == "M" for e in payload["traceEvents"])

    def test_window_prunes_metadata_tracks(self):
        sim = traced_sim()
        events = chrome_trace_events(sim.trace, since_us=50, until_us=150)
        # Only the record at 100 (host ws0) is in the window, so ws1
        # gets no process track.
        process_names = {e["args"]["name"] for e in events
                         if e["ph"] == "M" and e["name"] == "process_name"}
        assert process_names == {"sim", "ws0"}


class TestExport:
    def test_empty_tracer_exports_valid_payload(self, tmp_path):
        sim = Simulator(seed=0)  # tracing never enabled: no spans/records
        out = tmp_path / "empty.json"
        payload = export_timeline(sim.trace, out=str(out))
        on_disk = json.loads(out.read_text())
        assert on_disk == payload
        # Only the "sim" process metadata track survives.
        assert [e["ph"] for e in on_disk["traceEvents"]] == ["M"]
        assert on_disk["traceEvents"][0]["args"]["name"] == "sim"


    def test_export_writes_valid_json(self, tmp_path):
        sim = traced_sim()
        out = tmp_path / "timeline.json"
        payload = export_timeline(sim.trace, out=str(out))
        on_disk = json.loads(out.read_text())
        assert on_disk == json.loads(json.dumps(payload))
        assert on_disk["displayTimeUnit"] == "ms"
        assert isinstance(on_disk["traceEvents"], list)

    def test_export_embeds_metrics_snapshot(self, tmp_path):
        sim = traced_sim()
        metrics = MetricsRegistry(sim)
        metrics.counter("pkts", "ws0").inc(9)
        payload = export_timeline(sim.trace, metrics=metrics)
        assert payload["otherData"]["metrics"]["per_host"]["ws0"]["pkts"] == 9

    def test_export_accepts_file_object(self, tmp_path):
        sim = traced_sim()
        out = tmp_path / "t.json"
        with open(out, "w") as fh:
            export_timeline(sim.trace, out=fh)
        assert json.loads(out.read_text())["traceEvents"]
