"""Chrome trace_event export (repro.obs.timeline)."""

import json

from repro.obs import chrome_trace_events, export_timeline
from repro.obs.metrics import MetricsRegistry
from repro.sim import Simulator


def traced_sim():
    sim = Simulator(seed=0)
    sim.trace.enable("*")
    sid = sim.trace.begin_span("migration", "freeze", host="ws1", lhid=7)
    sim.schedule(500, lambda: sim.trace.end_span(sid))
    sim.schedule(100, lambda: sim.trace.record("net", "transmit",
                                               host="ws0", size=64))
    sim.run()
    return sim


class TestChromeEvents:
    def test_span_becomes_complete_event(self):
        sim = traced_sim()
        events = chrome_trace_events(sim.trace)
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 1
        (x,) = xs
        assert x["name"] == "freeze"
        assert x["cat"] == "migration"
        assert x["ts"] == 0 and x["dur"] == 500
        assert x["args"]["span_id"] == 1
        assert x["args"]["lhid"] == 7

    def test_record_becomes_instant_event(self):
        sim = traced_sim()
        instants = [e for e in chrome_trace_events(sim.trace)
                    if e["ph"] == "i" and e["name"] == "transmit"]
        assert len(instants) == 1
        assert instants[0]["ts"] == 100

    def test_one_pid_per_host(self):
        sim = traced_sim()
        events = chrome_trace_events(sim.trace)
        names = {e["args"]["name"]: e["pid"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        # pid 1 is the unattributed "sim" track; hosts follow, sorted.
        assert names["sim"] == 1
        assert set(names) == {"sim", "ws0", "ws1"}
        assert names["ws0"] < names["ws1"]

    def test_open_span_emitted_as_instant(self):
        sim = Simulator(seed=0)
        sim.trace.enable("*")
        sim.trace.begin_span("ipc", "send", host="ws0")
        events = chrome_trace_events(sim.trace)
        assert not [e for e in events if e["ph"] == "X"]
        opens = [e for e in events if e["ph"] == "i" and "(open)" in e["name"]]
        assert len(opens) == 1

    def test_parent_id_carried_in_args(self):
        sim = Simulator(seed=0)
        sim.trace.enable("*")
        root = sim.trace.begin_span("m", "root")
        child = sim.trace.begin_span("m", "child", parent=root)
        sim.trace.end_span(child)
        sim.trace.end_span(root)
        events = {e["name"]: e for e in chrome_trace_events(sim.trace)
                  if e["ph"] == "X"}
        assert events["child"]["args"]["parent_id"] == root
        assert "parent_id" not in events["root"]["args"]


class TestExport:
    def test_export_writes_valid_json(self, tmp_path):
        sim = traced_sim()
        out = tmp_path / "timeline.json"
        payload = export_timeline(sim.trace, out=str(out))
        on_disk = json.loads(out.read_text())
        assert on_disk == json.loads(json.dumps(payload))
        assert on_disk["displayTimeUnit"] == "ms"
        assert isinstance(on_disk["traceEvents"], list)

    def test_export_embeds_metrics_snapshot(self, tmp_path):
        sim = traced_sim()
        metrics = MetricsRegistry(sim)
        metrics.counter("pkts", "ws0").inc(9)
        payload = export_timeline(sim.trace, metrics=metrics)
        assert payload["otherData"]["metrics"]["per_host"]["ws0"]["pkts"] == 9

    def test_export_accepts_file_object(self, tmp_path):
        sim = traced_sim()
        out = tmp_path / "t.json"
        with open(out, "w") as fh:
            export_timeline(sim.trace, out=fh)
        assert json.loads(out.read_text())["traceEvents"]
