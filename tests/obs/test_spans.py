"""Span tracing: causal begin/end intervals on the Tracer."""

from repro.sim import Simulator


def make_sim():
    sim = Simulator(seed=0)
    sim.trace.enable("*")
    return sim


class TestSpanLifecycle:
    def test_disabled_tracer_returns_zero(self):
        sim = Simulator(seed=0)
        assert sim.trace.begin_span("ipc", "send") == 0
        sim.trace.end_span(0)  # must be a harmless no-op
        assert sim.trace.spans == []

    def test_category_not_enabled_returns_zero(self):
        sim = Simulator(seed=0)
        sim.trace.enable("net")
        assert sim.trace.begin_span("ipc", "send") == 0
        assert sim.trace.begin_span("net", "tx") != 0

    def test_begin_end_records_interval(self):
        sim = make_sim()
        sid = sim.trace.begin_span("ipc", "send", src="a", dst="b")
        sim.schedule(250, lambda: sim.trace.end_span(sid, outcome="ok"))
        sim.run()
        span = sim.trace.span(sid)
        assert span.start_us == 0
        assert span.end_us == 250
        assert span.duration_us == 250
        assert span.data["outcome"] == "ok"
        assert span.data["src"] == "a"

    def test_open_span_has_no_duration(self):
        sim = make_sim()
        sid = sim.trace.begin_span("ipc", "send")
        assert sim.trace.span(sid).end_us is None
        assert sim.trace.span(sid).duration_us is None

    def test_end_span_is_idempotent(self):
        sim = make_sim()
        sid = sim.trace.begin_span("ipc", "send")
        sim.trace.end_span(sid)
        first_end = sim.trace.span(sid).end_us
        sim.schedule(100, lambda: None)
        sim.run()
        sim.trace.end_span(sid, late=True)  # already ended: ignored
        span = sim.trace.span(sid)
        assert span.end_us == first_end
        assert "late" not in span.data

    def test_end_unknown_span_is_noop(self):
        sim = make_sim()
        sim.trace.end_span(999)  # nothing raised, nothing recorded
        assert sim.trace.spans == []


class TestCausalTree:
    def test_parent_links_build_a_tree(self):
        sim = make_sim()
        root = sim.trace.begin_span("migration", "migrate")
        freeze = sim.trace.begin_span("migration", "freeze", parent=root)
        copy_a = sim.trace.begin_span("migration", "residual-copy", parent=freeze)
        copy_b = sim.trace.begin_span("migration", "residual-copy", parent=freeze)
        for sid in (copy_a, copy_b, freeze, root):
            sim.trace.end_span(sid)
        kids = sim.trace.children_of(freeze)
        assert [s.span_id for s in kids] == [copy_a, copy_b]
        tree = sim.trace.span_tree(root)
        assert [s.span_id for s in tree] == [root, freeze, copy_a, copy_b]

    def test_contains_uses_time_bounds(self):
        sim = make_sim()
        outer = sim.trace.begin_span("x", "outer")
        inner_holder = {}

        def open_inner():
            inner_holder["id"] = sim.trace.begin_span("x", "inner")

        sim.schedule(10, open_inner)
        sim.schedule(20, lambda: sim.trace.end_span(inner_holder["id"]))
        sim.schedule(30, lambda: sim.trace.end_span(outer))
        sim.run()
        assert sim.trace.span(outer).contains(sim.trace.span(inner_holder["id"]))
        assert not sim.trace.span(inner_holder["id"]).contains(sim.trace.span(outer))

    def test_find_spans_filters(self):
        sim = make_sim()
        sim.trace.begin_span("migration", "freeze")
        sim.trace.begin_span("migration", "precopy")
        sim.trace.begin_span("ipc", "send")
        assert len(sim.trace.find_spans("migration")) == 2
        assert len(sim.trace.find_spans("migration", "freeze")) == 1
        assert len(sim.trace.find_spans(name="send")) == 1

    def test_clear_drops_spans(self):
        sim = make_sim()
        sid = sim.trace.begin_span("x", "s")
        sim.trace.clear()
        assert sim.trace.spans == []
        assert sim.trace.span(sid) is None
        # Ids restart; new spans are usable immediately.
        assert sim.trace.begin_span("x", "t") == 1
