"""Flight recorder: postmortem bundles on invariant violations."""

import json
import os

import pytest

from repro.errors import InvariantViolation, SimulationError
from repro.faults.invariants import InvariantChecker
from repro.obs import FlightRecorder, load_postmortem
from repro.obs.flight_recorder import BUNDLE_FILES
from repro.sim import Simulator


def violate(checker):
    """Trip at-most-once by reporting the same delivery twice."""
    checker.note_request_delivered("p1", 1, "p2")
    checker.note_request_delivered("p1", 1, "p2")


class TestFlightRecorder:
    def test_checker_has_no_recorder_by_default(self):
        checker = InvariantChecker(strict=False)
        assert checker.flight_recorder is None
        violate(checker)  # no recorder attached: records, no dump
        assert len(checker.violations) == 1

    def test_violation_dumps_bundle(self, tmp_path):
        sim = Simulator(seed=0)
        sim.trace.enable("*")
        sid = sim.trace.begin_span("migration", "freeze", host="ws1")
        sim.schedule(100, lambda: sim.trace.end_span(sid))
        sim.run()
        sim.metrics.enable()
        sim.metrics.counter("ipc.sends", "ws0").inc(3)

        out = tmp_path / "bundle"
        checker = InvariantChecker(strict=False)
        recorder = FlightRecorder(
            str(out), sim=sim, context={"seed": 42, "schedule": "drop"},
        ).attach(checker)
        violate(checker)

        assert recorder.dumped == str(out)
        for name in BUNDLE_FILES:
            assert (out / name).is_file()
        bundle = load_postmortem(str(out))
        assert bundle["manifest"]["reason"] == "invariant-violation"
        assert bundle["manifest"]["context"]["seed"] == 42
        assert "fastpath" in bundle["manifest"]["toggles"]
        assert not bundle["invariants"]["ok"]
        (v,) = bundle["invariants"]["violations"]
        assert v["invariant"] == "at-most-once"
        assert v["detail"]["count"] == 2
        # The trace tail is valid Chrome trace_event JSON.
        names = [e["name"] for e in bundle["trace"]["traceEvents"]]
        assert "freeze" in names
        assert bundle["metrics"]["cluster"]["ipc.sends"] == 3

    def test_strict_checker_dumps_before_raising(self, tmp_path):
        out = tmp_path / "bundle"
        checker = InvariantChecker(strict=True)
        FlightRecorder(str(out)).attach(checker)
        with pytest.raises(InvariantViolation):
            violate(checker)
        assert load_postmortem(str(out))["invariants"]["summary"][
            "at-most-once"] == 1

    def test_only_first_violation_dumps(self, tmp_path):
        out = tmp_path / "bundle"
        checker = InvariantChecker(strict=False)
        recorder = FlightRecorder(str(out)).attach(checker)
        violate(checker)
        first = json.loads((out / "invariants.json").read_text())
        checker.note_request_delivered("p9", 5, "p2")
        checker.note_request_delivered("p9", 5, "p2")
        assert len(checker.violations) == 2
        # The bundle still reflects the first dump.
        again = json.loads((out / "invariants.json").read_text())
        assert again == first
        assert recorder.dumped == str(out)

    def test_manual_dump_without_checker(self, tmp_path):
        out = tmp_path / "snap"
        recorder = FlightRecorder(str(out))
        recorder.dump(reason="manual-snapshot")
        bundle = load_postmortem(str(out))
        assert bundle["manifest"]["reason"] == "manual-snapshot"
        assert bundle["invariants"]["ok"]
        assert bundle["trace"]["traceEvents"] == []

    def test_load_rejects_non_bundle_dir(self, tmp_path):
        with pytest.raises(SimulationError):
            load_postmortem(str(tmp_path))

    def test_load_rejects_future_bundle_version(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path))
        recorder.dump(reason="x")
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        manifest["bundle_version"] = 99
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SimulationError):
            load_postmortem(str(tmp_path))

    def test_trace_tail_respects_cap(self, tmp_path):
        sim = Simulator(seed=0)
        sim.trace.enable("*")
        for i in range(50):
            sid = sim.trace.begin_span("m", f"s{i}")
            sim.trace.end_span(sid)
        recorder = FlightRecorder(str(tmp_path / "b"), sim=sim,
                                  max_trace_events=10)
        recorder.dump(reason="cap")
        events = load_postmortem(str(tmp_path / "b"))["trace"]["traceEvents"]
        spans = [e for e in events if e["ph"] != "M"]
        assert len(spans) == 10
        assert spans[-1]["name"] == "s49"  # the newest survive
