"""Crashed programs release their waiters (exit code -1) and are
recorded as faults -- nobody hangs on a dead rendezvous."""

import pytest

from repro.cluster import build_cluster
from repro.execution import ProgramImage, ProgramRegistry, exec_and_wait
from repro.kernel.process import Compute
from repro.net import BurstLoss
from repro.workloads import standard_registry


def test_crashed_program_releases_waiter():
    registry = ProgramRegistry()

    def buggy(ctx):
        yield Compute(200_000)
        raise ValueError("segfault, 1985-style")

    registry.register(ProgramImage(
        name="buggy", image_bytes=20 * 1024, space_bytes=64 * 1024,
        code_bytes=16 * 1024, body_factory=buggy,
    ))
    cluster = build_cluster(n_workstations=2, registry=registry)
    cluster.sim.strict = False
    outcome = {}

    def session(ctx):
        code = yield from exec_and_wait(ctx, "buggy", where="ws1")
        outcome["code"] = code

    cluster.spawn_session(cluster.workstations[0], session)
    cluster.run(until_us=60_000_000)
    assert outcome.get("code") == -1
    assert cluster.workstations[1].kernel.faulted


def test_crash_is_not_confused_with_clean_exit():
    registry = ProgramRegistry()

    def fine(ctx):
        yield Compute(100_000)
        return 0

    registry.register(ProgramImage(
        name="fine", image_bytes=20 * 1024, space_bytes=64 * 1024,
        code_bytes=16 * 1024, body_factory=fine,
    ))
    cluster = build_cluster(n_workstations=2, registry=registry)
    outcome = {}

    def session(ctx):
        code = yield from exec_and_wait(ctx, "fine", where="ws1")
        outcome["code"] = code

    cluster.spawn_session(cluster.workstations[0], session)
    cluster.run(until_us=60_000_000)
    assert outcome.get("code") == 0
    assert not cluster.workstations[1].kernel.faulted


def test_migration_under_burst_loss():
    """Correlated loss bursts (a glitching segment) instead of uniform
    loss: the migration still completes and the job still finishes."""
    from repro.execution import exec_program, wait_for_program
    from repro.migration.migrateprog import migrate_program

    cluster = build_cluster(
        n_workstations=3, seed=41, registry=standard_registry(scale=0.5),
        loss=BurstLoss(p_good_to_bad=0.002, p_bad_to_good=0.25),
    )
    job = {}

    def session(ctx):
        pid, pm = yield from exec_program(ctx, "longsim", where="ws1")
        job["pid"] = pid
        code = yield from wait_for_program(pm, pid)
        job["code"] = code

    cluster.spawn_session(cluster.workstations[0], session)
    while "pid" not in job and cluster.sim.peek() is not None:
        cluster.sim.run(until_us=cluster.sim.now + 100_000)
    replies = []

    def migrator(ctx):
        reply = yield from migrate_program(job["pid"])
        replies.append(reply)

    cluster.spawn_session(cluster.workstations[0], migrator, name="mig")
    while not replies and cluster.sim.peek() is not None:
        cluster.sim.run(until_us=cluster.sim.now + 100_000)
    assert replies[0]["ok"], replies[0].get("error")
    cluster.run(until_us=900_000_000)
    assert job.get("code") == 0
    assert cluster.net.packets_dropped > 0


def test_file_server_failover():
    """With two file servers, the death of the boot-configured one only
    delays the next program launch: the program manager falls back to
    the file-server group and adopts the survivor."""
    from repro.execution import exec_and_wait

    cluster = build_cluster(n_workstations=2, n_file_servers=2,
                            registry=standard_registry(scale=0.1), seed=9)
    outcome = {}

    def session(ctx):
        code = yield from exec_and_wait(ctx, "tex", where="ws1")
        outcome["first"] = code
        outcome["crash"] = True
        code = yield from exec_and_wait(ctx, "tex", where="ws1")
        outcome["second"] = code

    cluster.spawn_session(cluster.workstations[0], session)
    while "crash" not in outcome and cluster.sim.peek() is not None:
        cluster.sim.run(until_us=cluster.sim.now + 100_000)
    # Kill the primary file server machine.
    cluster.server_machines[0].crash()
    cluster.sim.strict = False
    cluster.run(until_us=900_000_000)
    assert outcome.get("first") == 0
    assert outcome.get("second") == 0
    survivor = cluster.file_servers[1].pcb.pid
    assert cluster.workstations[1].kernel.file_server_pid == survivor
