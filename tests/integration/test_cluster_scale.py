"""The paper's §1 environment at scale.

"Our research system consists of about 25 workstations and server
machines...  With a personal workstation per project member, we observe
over one third of our workstations idle, even at the busiest times of
the day...  most of our workstations are over 80% idle even during the
peak usage hours (the most common activity is editing files)."

This scenario builds that world: two dozen workstations, most owners
editing, a stream of compilations offloaded with ``@ *``, owners coming
back and reclaiming, and the claims checked at the end.
"""

import pytest

from repro.cluster import Owner, build_cluster
from repro.cluster.monitor import ClusterMonitor
from repro.execution import exec_and_wait
from repro.migration.migrateprog import migrate_all_remote
from repro.workloads import standard_registry

N_WORKSTATIONS = 24
N_OWNERS = 16
N_JOBS = 10


@pytest.fixture(scope="module")
def world():
    """One shared big-cluster run (module-scoped: it is the expensive
    part; the tests below only read its outcome)."""
    cluster = build_cluster(
        n_workstations=N_WORKSTATIONS, n_file_servers=2, seed=2025,
        registry=standard_registry(scale=0.15),
    )
    owners = []
    for i in range(N_OWNERS):
        owner = Owner(cluster.workstations[i])
        owner.arrive()
        owners.append(owner)

    results = []

    def batch_session(ctx, job_id):
        from repro.kernel.process import Delay

        # Humans do not submit ten jobs in the same millisecond; the
        # decentralized scheduler relies on load info having caught up.
        yield Delay(1 + job_id * 1_500_000)
        code = yield from exec_and_wait(
            ctx, "cc68" if job_id % 3 else "tex", args=(f"src{job_id}.c",),
            where="*",
        )
        results.append((job_id, code, ctx.sim.now))

    for i in range(N_JOBS):
        cluster.spawn_session(
            cluster.workstations[i % N_OWNERS],
            lambda ctx, j=i: batch_session(ctx, j),
            name=f"batch{i}",
        )

    # Mid-run, a few owners return to borrowed machines and reclaim them.
    reclaims = []

    def reclaim_session(ctx, host):
        from repro.kernel.process import Delay

        yield Delay(8_000_000)
        pm_pid = cluster.pm(host).pcb.pid
        outcomes = yield from migrate_all_remote(pm_pid)
        reclaims.append((host, outcomes))

    for host in ("ws16", "ws18", "ws20"):
        cluster.spawn_session(cluster.station(host),
                              lambda ctx, h=host: reclaim_session(ctx, h),
                              name=f"reclaim-{h if (h:=host) else h}")

    limit = 600_000_000
    while len(results) < N_JOBS and cluster.sim.now < limit:
        if cluster.sim.peek() is None:
            break
        cluster.sim.run(until_us=cluster.sim.now + 1_000_000)
    return cluster, owners, results, reclaims


def test_all_jobs_complete(world):
    cluster, owners, results, reclaims = world
    assert len(results) == N_JOBS
    assert all(code == 0 for _, code, _ in results)


def test_cluster_remains_mostly_idle(world):
    """The paper's >1/3 idle / >80% CPU-idle observation."""
    cluster, owners, results, reclaims = world
    assert cluster.idle_fraction() > 0.6


def test_no_owner_noticed_anything(world):
    cluster, owners, results, reclaims = world
    worst = max(owner.worst_interference_us() for owner in owners)
    assert worst < 25_000  # no human-perceptible stall anywhere


def test_reclaims_cleared_their_hosts(world):
    cluster, owners, results, reclaims = world
    assert len(reclaims) == 3
    for host, outcomes in reclaims:
        # Whatever was there moved (or there was nothing to move).
        assert all(reply["ok"] for _, reply in outcomes)
        assert cluster.pm(host).remote_program_lhids() == []


def test_work_was_actually_distributed(world):
    cluster, owners, results, reclaims = world
    busy_hosts = sum(
        1 for ws in cluster.workstations
        if ws.kernel.scheduler.busy_us > 1_000_000
    )
    assert busy_hosts >= 5  # the jobs spread, not piled


def test_no_simulation_failures(world):
    cluster, owners, results, reclaims = world
    assert cluster.sim.failures == []
    assert all(not ws.kernel.faulted for ws in cluster.workstations)
