"""End-to-end tests of the remote-execution facility (paper §2)."""

import pytest

from repro.cluster import build_cluster
from repro.cluster.monitor import ClusterMonitor
from repro.errors import ExecutionError
from repro.execution import ProgramImage, ProgramRegistry, exec_and_wait, exec_program, wait_for_program, write_stdout
from repro.kernel.process import Compute, Priority, Touch


def trivial_program(compute_us=50_000, exit_code=0):
    """A program that computes briefly, touches memory, and exits."""

    def body(ctx):
        yield Compute(compute_us)
        yield Touch(0, 4096)
        return exit_code

    return body


def printing_program(text):
    def body(ctx):
        yield Compute(10_000)
        yield from write_stdout(ctx, text)
        return 0

    return body


def make_cluster(n=3, seed=0, **kwargs):
    registry = ProgramRegistry()
    registry.register(ProgramImage(
        name="hello", image_bytes=40 * 1024, space_bytes=96 * 1024,
        code_bytes=30 * 1024, body_factory=trivial_program(),
    ))
    registry.register(ProgramImage(
        name="sevener", image_bytes=40 * 1024, space_bytes=96 * 1024,
        code_bytes=30 * 1024, body_factory=trivial_program(exit_code=7),
    ))
    registry.register(ProgramImage(
        name="printer", image_bytes=20 * 1024, space_bytes=64 * 1024,
        code_bytes=16 * 1024, body_factory=printing_program("hello from afar"),
    ))
    registry.register(ProgramImage(
        name="slowpoke", image_bytes=40 * 1024, space_bytes=96 * 1024,
        code_bytes=30 * 1024, body_factory=trivial_program(compute_us=30_000_000),
    ))
    registry.register(ProgramImage(
        name="framegrab", image_bytes=20 * 1024, space_bytes=64 * 1024,
        code_bytes=16 * 1024, body_factory=trivial_program(),
        device_bound=True,
    ))
    return build_cluster(n_workstations=n, seed=seed, registry=registry, **kwargs)


class TestLocalExecution:
    def test_exec_and_wait_returns_exit_code(self):
        cluster = make_cluster()
        results = []

        def session(ctx):
            code = yield from exec_and_wait(ctx, "sevener")
            results.append(code)

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=10_000_000)
        assert results == [7]

    def test_local_program_runs_at_local_priority(self):
        cluster = make_cluster()
        seen = []

        def session(ctx):
            pid, pm = yield from exec_program(ctx, "slowpoke")
            seen.append(pid)

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=2_000_000)
        ws = cluster.workstations[0]
        pcb = ws.kernel.find_pcb(seen[0])
        assert pcb is not None
        assert pcb.priority == Priority.LOCAL

    def test_unknown_program_raises(self):
        cluster = make_cluster()
        caught = []

        def session(ctx):
            try:
                yield from exec_program(ctx, "does-not-exist")
            except ExecutionError as exc:
                caught.append(str(exc))

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=10_000_000)
        assert caught and "no such program" in caught[0]


class TestRemoteExecution:
    def test_exec_at_named_machine(self):
        cluster = make_cluster()
        seen = []

        def session(ctx):
            pid, pm = yield from exec_program(ctx, "hello", where="ws2")
            seen.append(pid)

        cluster.spawn_session(cluster.workstations[0], session)
        while not seen and cluster.sim.peek() is not None:
            cluster.sim.run(until_us=cluster.sim.now + 50_000)
        assert seen
        monitor = ClusterMonitor(cluster)
        assert monitor.host_of_lhid(seen[0].logical_host_id) == "ws2"

    def test_exec_at_star_lands_on_another_idle_machine(self):
        cluster = make_cluster(n=4)
        seen = []

        def session(ctx):
            pid, pm = yield from exec_program(ctx, "hello", where="*")
            seen.append(pid)

        cluster.spawn_session(cluster.workstations[0], session)
        while not seen and cluster.sim.peek() is not None:
            cluster.sim.run(until_us=cluster.sim.now + 50_000)
        assert seen
        monitor = ClusterMonitor(cluster)
        host = monitor.host_of_lhid(seen[0].logical_host_id)
        # Broadcast queries do not loop back: some *other* machine won.
        assert host in {"ws1", "ws2", "ws3"}

    def test_remote_program_runs_at_remote_priority(self):
        cluster = make_cluster()
        seen = []

        def session(ctx):
            pid, pm = yield from exec_program(ctx, "slowpoke", where="ws1")
            seen.append(pid)

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=10_000_000)
        pcb = cluster.workstations[1].kernel.find_pcb(seen[0])
        assert pcb.priority == Priority.REMOTE

    def test_remote_wait_returns_exit_code(self):
        cluster = make_cluster()
        results = []

        def session(ctx):
            code = yield from exec_and_wait(ctx, "sevener", where="ws1")
            results.append(code)

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=20_000_000)
        assert results == [7]

    def test_remote_program_output_reaches_home_display(self):
        """Network transparency: the program runs on ws1, its output
        appears on the requesting user's ws0 display (paper §2)."""
        cluster = make_cluster()

        def session(ctx):
            yield from exec_and_wait(ctx, "printer", where="ws1")

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=20_000_000)
        assert "hello from afar" in cluster.displays["ws0"].all_lines()
        assert "hello from afar" not in cluster.displays["ws1"].all_lines()

    def test_device_bound_program_refused_remotely(self):
        cluster = make_cluster()
        caught = []

        def session(ctx):
            try:
                yield from exec_program(ctx, "framegrab", where="ws1")
            except ExecutionError as exc:
                caught.append(str(exc))

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=10_000_000)
        assert caught and "devices" in caught[0]

    def test_device_bound_program_allowed_locally(self):
        cluster = make_cluster()
        results = []

        def session(ctx):
            code = yield from exec_and_wait(ctx, "framegrab")
            results.append(code)

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=10_000_000)
        assert results == [0]

    def test_busy_machines_do_not_answer_candidate_queries(self):
        from repro.services.program_manager import AcceptPolicy

        cluster = make_cluster(
            n=2, accept_policy=AcceptPolicy(max_program_processes=0)
        )
        from repro.errors import NoCandidateHostError
        caught = []

        def session(ctx):
            try:
                yield from exec_program(ctx, "hello", where="*")
            except NoCandidateHostError:
                caught.append(True)

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=60_000_000)
        assert caught == [True]

    def test_many_concurrent_remote_executions(self):
        cluster = make_cluster(n=5)
        results = []

        def session(ctx, target):
            code = yield from exec_and_wait(ctx, "hello", where=target)
            results.append((target, code))

        for i, target in enumerate(["ws1", "ws2", "ws3", "ws4"]):
            cluster.spawn_session(
                cluster.workstations[0],
                lambda ctx, t=target: session(ctx, t),
                name=f"session-{i}",
            )
        cluster.run(until_us=60_000_000)
        assert sorted(r[0] for r in results) == ["ws1", "ws2", "ws3", "ws4"]
        assert all(code == 0 for _, code in results)


class TestSubprograms:
    def test_subprogram_in_same_logical_host(self):
        """Sub-programs typically execute within the parent's logical
        host (paper §3)."""
        cluster = make_cluster()
        info = []

        def parent_body(ctx):
            pid, pm = yield from exec_program(
                ctx, "hello", lhid=ctx.self_pid.logical_host_id
            )
            info.append((ctx.self_pid, pid))
            code = yield from wait_for_program(pm, pid)
            return code

        registry = cluster.registry
        registry.register(ProgramImage(
            name="parent", image_bytes=30 * 1024, space_bytes=64 * 1024,
            code_bytes=20 * 1024, body_factory=parent_body,
        ))

        def session(ctx):
            yield from exec_and_wait(ctx, "parent")

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=30_000_000)
        assert info
        parent_pid, child_pid = info[0]
        assert parent_pid.logical_host_id == child_pid.logical_host_id

    def test_subprogram_remote_from_parent_gets_own_logical_host(self):
        cluster = make_cluster()
        info = []

        def parent_body(ctx):
            pid, pm = yield from exec_program(ctx, "hello", where="ws2")
            info.append((ctx.self_pid, pid))
            yield from wait_for_program(pm, pid)
            return 0

        cluster.registry.register(ProgramImage(
            name="parent2", image_bytes=30 * 1024, space_bytes=64 * 1024,
            code_bytes=20 * 1024, body_factory=parent_body,
        ))

        def session(ctx):
            yield from exec_and_wait(ctx, "parent2")

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=30_000_000)
        parent_pid, child_pid = info[0]
        assert parent_pid.logical_host_id != child_pid.logical_host_id


class TestEnvironmentTransparency:
    def test_context_identical_shape_local_and_remote(self):
        """The execution environment is initialized the same way locally
        and remotely (paper §2: arguments and environment passed in the
        same manner)."""
        cluster = make_cluster()
        captured = {}

        def capture_body(ctx):
            captured[ctx.remote] = ctx
            yield Compute(1_000)
            return 0

        cluster.registry.register(ProgramImage(
            name="capture", image_bytes=20 * 1024, space_bytes=64 * 1024,
            code_bytes=16 * 1024, body_factory=capture_body,
        ))

        def session(ctx):
            yield from exec_and_wait(ctx, "capture", args=("a", "b"))
            yield from exec_and_wait(ctx, "capture", args=("a", "b"), where="ws1")

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=30_000_000)
        local, remote = captured[False], captured[True]
        assert local.args == remote.args == ("a", "b")
        assert local.stdout == remote.stdout  # same display server pid
        assert local.name_cache == remote.name_cache
        # Kernel-server/program-manager references are location-independent
        # local groups built from each program's own lhid.
        assert local.kernel_server != remote.kernel_server
