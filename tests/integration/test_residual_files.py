"""The paper's §3.3 residual-dependency scenario, end to end.

"The program may have accessed files on the original host workstation.
After the program has been migrated, the program continues to have
access to those files, by virtue of V's network-transparent IPC.
However, this use imposes a continued load on the original host and
results in failure of the program should the original host fail...
With our current use of diskless workstations, file migration is not
required."

Reproduced both ways: a program using the *global* file server migrates
with no residual tie and survives the old host's death; a program bound
to a file server running *on its original workstation* keeps working
after migration (network transparency!) but is flagged by the auditor
and dies with the old host.
"""

import pytest

from repro.cluster import build_cluster
from repro.errors import SendTimeoutError
from repro.execution import ProgramImage, exec_program
from repro.ipc.messages import Message
from repro.kernel.process import Compute, Delay, Send
from repro.migration.migrateprog import migrate_program
from repro.migration.residual import residual_dependencies
from repro.services.file_server import install_file_server
from repro.workloads import standard_registry


def temp_file_program(fs_pid_holder, outcomes):
    """Writes a temp file, computes, then reads the file back -- the
    paper's written-and-closed-then-read-later pattern."""

    def body(ctx):
        fs = fs_pid_holder["pid"] if fs_pid_holder else ctx.server("file-server")
        yield Send(fs, Message("write-file", path="/tmp/scratch", nbytes=8192))
        for _ in range(40):
            yield Compute(100_000)
            yield Delay(100_000)
        try:
            reply = yield Send(fs, Message("read-file", path="/tmp/scratch"))
            outcomes.append(("read", reply.kind))
        except SendTimeoutError:
            outcomes.append(("read", "timeout"))
        return 0

    return body


def build(fs_holder, outcomes, local_fs: bool):
    cluster = build_cluster(n_workstations=3, seed=4,
                            registry=standard_registry(scale=0.3))
    if local_fs:
        # The anti-pattern: a file server co-resident on the execution
        # workstation (ws1).
        server = install_file_server(cluster.workstations[1],
                                     cluster.registry, name="local-fs")
        fs_holder["pid"] = server.pcb.pid
    cluster.registry.register(ProgramImage(
        name="scratcher", image_bytes=40 * 1024, space_bytes=96 * 1024,
        code_bytes=32 * 1024, body_factory=temp_file_program(
            fs_holder if local_fs else None, outcomes),
    ))
    holder = {}

    def session(ctx):
        pid, pm = yield from exec_program(ctx, "scratcher", where="ws1")
        holder["pid"] = pid

    cluster.spawn_session(cluster.workstations[0], session)
    while "pid" not in holder and cluster.sim.peek() is not None:
        cluster.sim.run(until_us=cluster.sim.now + 100_000)
    return cluster, holder


def migrate(cluster, holder):
    replies = []

    def migrator(ctx):
        reply = yield from migrate_program(holder["pid"])
        replies.append(reply)

    cluster.spawn_session(cluster.workstations[0], migrator, name="mig")
    while not replies and cluster.sim.peek() is not None:
        cluster.sim.run(until_us=cluster.sim.now + 100_000)
    assert replies[0]["ok"], replies[0].get("error")
    return replies[0]


class TestGlobalFileServer:
    def test_no_dependency_and_survives_old_host_death(self):
        outcomes = []
        cluster, holder = build({}, outcomes, local_fs=False)
        pid = holder["pid"]
        lh = cluster.workstations[1].kernel.logical_hosts[pid.logical_host_id]
        # Audit before migrating: nothing ties the program to ws1.
        assert residual_dependencies(lh, cluster.workstations[1]) == []
        migrate(cluster, holder)
        cluster.workstations[1].crash()
        cluster.sim.strict = False
        cluster.run(until_us=600_000_000)
        assert ("read", "fs-ok") in outcomes

    def test_file_contents_follow_because_they_never_moved(self):
        outcomes = []
        cluster, holder = build({}, outcomes, local_fs=False)
        migrate(cluster, holder)
        cluster.run(until_us=600_000_000)
        # The file is still on the (global) file server, size intact.
        fs = cluster.file_servers[0]
        assert fs.files["/tmp/scratch"].size_bytes == 8192


class TestLocalFileServer:
    def test_auditor_flags_the_dependency(self):
        fs_holder = {}
        outcomes = []
        cluster, holder = build(fs_holder, outcomes, local_fs=True)
        pid = holder["pid"]
        cluster.run(until_us=cluster.sim.now + 1_000_000)
        lh = cluster.workstations[1].kernel.logical_hosts[pid.logical_host_id]
        deps = residual_dependencies(lh, cluster.workstations[1])
        assert any(d.pid == fs_holder["pid"] for d in deps)

    def test_transparent_access_continues_after_migration(self):
        """The paper: the migrated program *continues to have access* to
        the old host's files -- the dependency is a liability, not an
        immediate failure."""
        fs_holder = {}
        outcomes = []
        cluster, holder = build(fs_holder, outcomes, local_fs=True)
        migrate(cluster, holder)
        cluster.run(until_us=600_000_000)
        assert ("read", "fs-ok") in outcomes

    def test_old_host_death_breaks_the_program(self):
        fs_holder = {}
        outcomes = []
        cluster, holder = build(fs_holder, outcomes, local_fs=True)
        migrate(cluster, holder)
        cluster.workstations[1].crash()
        cluster.sim.strict = False
        cluster.run(until_us=600_000_000)
        assert ("read", "timeout") in outcomes
