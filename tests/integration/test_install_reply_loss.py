"""Regression: losing the install-state reply must not fork the program.

The kernel-state transfer is addressed via the shell's *temporary*
logical-host id, which stops resolving the moment the install succeeds
(the id is swapped to the original).  If the "installed" reply packet is
then lost, the migration manager's retransmission must still find the
retained reply through duplicate suppression -- otherwise the manager
assumes the transfer failed and unfreezes the original copy while the
new copy is already running: a forked program.
"""

import pytest

from repro.cluster import build_cluster
from repro.cluster.monitor import ClusterMonitor
from repro.execution import exec_program, wait_for_program
from repro.migration.migrateprog import migrate_program
from repro.workloads import standard_registry


class DropInstalledReplies:
    """Scripted loss: drop the first N reply packets carrying an
    ``installed`` message."""

    def __init__(self, n=3):
        self.remaining = n
        self.dropped = 0

    def drops(self, sim, packet) -> bool:
        if (
            self.remaining > 0
            and packet.kind == "reply"
            and getattr(packet.payload.get("message"), "kind", "") == "installed"
        ):
            self.remaining -= 1
            self.dropped += 1
            return True
        return False


def test_lost_install_reply_does_not_fork_the_program():
    loss = DropInstalledReplies(n=3)
    cluster = build_cluster(
        n_workstations=3, seed=9, registry=standard_registry(scale=0.5),
        loss=loss,
    )
    job = {}

    def session(ctx):
        pid, pm = yield from exec_program(ctx, "longsim", where="ws1")
        job["pid"] = pid
        code = yield from wait_for_program(pm, pid)
        job["code"] = code

    cluster.spawn_session(cluster.workstations[0], session)
    while "pid" not in job and cluster.sim.peek() is not None:
        cluster.sim.run(until_us=cluster.sim.now + 100_000)
    replies = []

    def migrator(ctx):
        reply = yield from migrate_program(job["pid"])
        replies.append(reply)

    cluster.spawn_session(cluster.workstations[0], migrator, name="mig")
    while not replies and cluster.sim.peek() is not None:
        cluster.sim.run(until_us=cluster.sim.now + 100_000)

    # The replies were dropped, so retransmission had to recover them.
    assert loss.dropped >= 1
    assert replies[0]["ok"], replies[0].get("error")

    # Exactly one copy of the program exists, at the destination.
    monitor = ClusterMonitor(cluster)
    pid = job["pid"]
    hosting = [
        ws.name
        for ws in cluster.workstations
        if ws.kernel.find_pcb(pid) is not None
    ]
    assert len(hosting) == 1
    assert hosting[0] != "ws1"

    cluster.run(until_us=600_000_000)
    assert job.get("code") == 0
