"""Stress and failure-injection integration tests.

These go beyond the paper's own evaluation: chained and concurrent
migrations, migration under packet loss, and kernel-server operations
deferred across a freeze (paper §3.1.3's defer-until-unfrozen rule).
"""

import pytest

from repro.cluster import build_cluster
from repro.cluster.monitor import ClusterMonitor
from repro.execution import exec_program, wait_for_program
from repro.ipc.messages import Message
from repro.kernel.ids import local_kernel_server_group
from repro.kernel.process import Delay, Send
from repro.migration.migrateprog import migrate_program
from repro.net import BernoulliLoss
from repro.workloads import standard_registry


def make_cluster(n=4, seed=0, scale=0.3, **kwargs):
    return build_cluster(n_workstations=n, seed=seed,
                         registry=standard_registry(scale=scale), **kwargs)


def launch(cluster, program="longsim", where="ws1"):
    holder = {}

    def session(ctx):
        pid, pm = yield from exec_program(ctx, program, where=where)
        holder["pid"] = pid
        code = yield from wait_for_program(pm, pid)
        holder["code"] = code

    cluster.spawn_session(cluster.workstations[0], session,
                          name=f"launch-{program}-{where}")
    return holder


def run_until(cluster, predicate, limit_us=600_000_000):
    while not predicate() and cluster.sim.now < limit_us:
        if cluster.sim.peek() is None:
            break
        cluster.sim.run(until_us=cluster.sim.now + 100_000)
    return predicate()


class TestChainedMigrations:
    def test_migrate_twice_and_still_reachable(self):
        """A -> B -> C: the logical host stays addressable through two
        rebinds and the program completes."""
        cluster = make_cluster()
        job = launch(cluster, where="ws1")
        assert run_until(cluster, lambda: "pid" in job)
        pid = job["pid"]
        monitor = ClusterMonitor(cluster)
        hops = []

        def migrator(ctx):
            for _ in range(2):
                reply = yield from migrate_program(pid)
                hops.append(reply)
                yield Delay(1_000_000)

        cluster.spawn_session(cluster.workstations[0], migrator, name="mig")
        assert run_until(cluster, lambda: len(hops) == 2)
        assert all(reply["ok"] for reply in hops)
        assert hops[0]["dest"] != hops[1]["dest"]
        cluster.run(until_us=600_000_000)
        assert job.get("code") == 0

    def test_three_hop_chain(self):
        cluster = make_cluster(n=5, scale=0.5)
        job = launch(cluster, where="ws1")
        assert run_until(cluster, lambda: "pid" in job)
        pid = job["pid"]
        hops = []

        def migrator(ctx):
            for _ in range(3):
                reply = yield from migrate_program(pid)
                hops.append(reply)
                yield Delay(500_000)

        cluster.spawn_session(cluster.workstations[0], migrator, name="mig")
        assert run_until(cluster, lambda: len(hops) == 3)
        assert all(reply["ok"] for reply in hops), [h.get("error") for h in hops]
        cluster.run(until_us=600_000_000)
        assert job.get("code") == 0


class TestConcurrentMigrations:
    def test_two_programs_leave_one_host_simultaneously(self):
        cluster = make_cluster(n=5)
        jobs = [launch(cluster, where="ws1"), launch(cluster, where="ws1")]
        assert run_until(cluster, lambda: all("pid" in j for j in jobs))
        replies = []

        def migrator(ctx, pid):
            reply = yield from migrate_program(pid)
            replies.append(reply)

        for i, job in enumerate(jobs):
            cluster.spawn_session(
                cluster.workstations[0],
                lambda ctx, p=job["pid"]: migrator(ctx, p),
                name=f"mig{i}",
            )
        assert run_until(cluster, lambda: len(replies) == 2)
        assert all(reply["ok"] for reply in replies), [r.get("error") for r in replies]
        cluster.run(until_us=600_000_000)
        assert all(job.get("code") == 0 for job in jobs)

    def test_crossing_migrations_between_two_hosts(self):
        """ws1's job moves out while ws2's job moves out: no deadlock,
        both succeed."""
        cluster = make_cluster(n=5)
        job1 = launch(cluster, where="ws1")
        job2 = launch(cluster, where="ws2")
        assert run_until(cluster, lambda: "pid" in job1 and "pid" in job2)
        replies = []

        def migrator(ctx, pid):
            reply = yield from migrate_program(pid)
            replies.append(reply)

        cluster.spawn_session(cluster.workstations[0],
                              lambda ctx: migrator(ctx, job1["pid"]), name="m1")
        cluster.spawn_session(cluster.workstations[0],
                              lambda ctx: migrator(ctx, job2["pid"]), name="m2")
        assert run_until(cluster, lambda: len(replies) == 2)
        assert all(reply["ok"] for reply in replies)


class TestMigrationUnderLoss:
    @pytest.mark.parametrize("loss_rate", [0.05, 0.15])
    def test_migration_completes_despite_loss(self, loss_rate):
        cluster = make_cluster(n=3, seed=17, loss=BernoulliLoss(loss_rate))
        job = launch(cluster, where="ws1")
        assert run_until(cluster, lambda: "pid" in job)
        replies = []

        def migrator(ctx):
            reply = yield from migrate_program(job["pid"])
            replies.append(reply)

        cluster.spawn_session(cluster.workstations[0], migrator, name="mig")
        assert run_until(cluster, lambda: bool(replies))
        assert replies[0]["ok"], replies[0].get("error")
        cluster.run(until_us=900_000_000)
        assert job.get("code") == 0

    def test_migrated_space_is_complete_under_loss(self):
        """Packet loss during pre-copy must not leave holes in the moved
        address space (the distinct-page completeness check)."""
        cluster = make_cluster(n=3, seed=23, scale=3.0, loss=BernoulliLoss(0.1))
        job = launch(cluster, program="parser", where="ws1")
        assert run_until(cluster, lambda: "pid" in job)
        pid = job["pid"]
        src_space = cluster.workstations[1].kernel.find_pcb(pid).space
        replies = []

        def migrator(ctx):
            reply = yield from migrate_program(pid)
            replies.append(reply)

        cluster.spawn_session(cluster.workstations[0], migrator, name="mig")
        assert run_until(cluster, lambda: bool(replies))
        assert replies[0]["ok"], replies[0].get("error")
        monitor = ClusterMonitor(cluster)
        dest = monitor.host_of_lhid(pid.logical_host_id)
        dst_pcb = cluster.station(dest).kernel.find_pcb(pid)
        # Every page the source had written by the freeze is present (the
        # program has since written more at the destination, never less).
        for src_page, dst_page in zip(src_space.pages, dst_pcb.space.pages):
            assert dst_page.version >= src_page.version


class TestFreezeDeferredOps:
    def test_suspend_during_freeze_applies_after_unfreeze(self):
        """Paper §3.1.3: kernel-server requests that modify a frozen
        logical host are deferred until it is unfrozen."""
        cluster = make_cluster(n=2)
        job = launch(cluster, where="ws1")
        assert run_until(cluster, lambda: "pid" in job)
        pid = job["pid"]
        kernel = cluster.workstations[1].kernel
        lh = kernel.logical_hosts[pid.logical_host_id]
        kernel.freeze_logical_host(lh)
        done = []

        def suspender(ctx):
            reply = yield Send(
                local_kernel_server_group(pid.logical_host_id),
                Message("suspend", pid=pid),
            )
            done.append((ctx.sim.now, reply.kind))

        cluster.spawn_session(cluster.workstations[0], suspender, name="susp")
        cluster.run(until_us=cluster.sim.now + 3_000_000)
        assert done == []  # deferred, not answered, not failed
        unfroze_at = cluster.sim.now
        kernel.unfreeze_logical_host(lh)
        from repro.kernel.kernel_server import reprocess_deferred

        reprocess_deferred(kernel, lh)
        assert run_until(cluster, lambda: bool(done))
        assert done[0][1] == "ok"
        assert done[0][0] >= unfroze_at
        pcb = kernel.find_pcb(pid)
        assert pcb.suspended

    def test_query_ops_work_on_frozen_host(self):
        """Reads don't modify the logical host: they answer even frozen."""
        cluster = make_cluster(n=2)
        job = launch(cluster, where="ws1")
        assert run_until(cluster, lambda: "pid" in job)
        pid = job["pid"]
        kernel = cluster.workstations[1].kernel
        kernel.freeze_logical_host(kernel.logical_hosts[pid.logical_host_id])
        got = []

        def querier(ctx):
            reply = yield Send(
                local_kernel_server_group(pid.logical_host_id),
                Message("query-process", pid=pid),
            )
            got.append(reply)

        cluster.spawn_session(cluster.workstations[0], querier, name="q")
        assert run_until(cluster, lambda: bool(got), limit_us=30_000_000)
        assert got[0]["frozen"] is True


class TestGroupMembershipMigration:
    def test_group_member_still_reachable_after_migration(self):
        """A program that joined a global group keeps receiving group
        sends after migrating (membership travels in the bundle)."""
        from repro.execution import ProgramImage
        from repro.kernel.ids import Pid
        from repro.kernel.process import Receive, Reply

        group = Pid(0xFFFF, 0x0060 | 0x8000)
        cluster = make_cluster(n=3)

        def member_body(ctx):
            while True:
                sender, msg = yield Receive()
                if msg.kind == "stop":
                    yield Reply(sender, Message("stopped"))
                    return 0
                yield Reply(sender, msg.replying(served=True))

        cluster.registry.register(ProgramImage(
            name="groupsvc", image_bytes=30 * 1024, space_bytes=64 * 1024,
            code_bytes=24 * 1024, body_factory=member_body,
        ))
        job = launch(cluster, program="groupsvc", where="ws1")
        assert run_until(cluster, lambda: "pid" in job)
        pid = job["pid"]
        cluster.workstations[1].kernel.groups.join(group, pid)

        replies = []

        def client(ctx):
            reply = yield Send(group, Message("work"))
            replies.append(reply)
            migrated = yield from migrate_program(pid)
            replies.append(migrated)
            reply = yield Send(group, Message("work"))
            replies.append(reply)

        cluster.spawn_session(cluster.workstations[0], client, name="client")
        assert run_until(cluster, lambda: len(replies) == 3)
        assert replies[0]["served"]
        assert replies[1]["ok"]
        assert replies[2]["served"]
