"""End-to-end tests of preemptable migration (paper §3)."""

import pytest

from repro.cluster import build_cluster
from repro.cluster.monitor import ClusterMonitor
from repro.errors import MigrationError
from repro.execution import ProgramImage, ProgramRegistry, exec_and_wait, exec_program, wait_for_program
from repro.ipc.messages import Message
from repro.kernel.process import Compute, Delay, Priority, Touch, TouchPages, Send, Receive, Reply
from repro.migration.migrateprog import migrate_all_remote, migrate_program


def churner_program(iterations=200, pages_per_burst=2, compute_us=50_000, space_pages=48):
    """A program that alternates compute with dirtying a few pages --
    the canonical migration victim."""

    def body(ctx):
        total = 0
        for i in range(iterations):
            yield Compute(compute_us)
            first = (i * pages_per_burst) % (space_pages - pages_per_burst)
            yield TouchPages(range(first, first + pages_per_burst))
            total += 1
        return 0

    return body


def make_cluster(n=3, seed=0, **kwargs):
    registry = ProgramRegistry()
    registry.register(ProgramImage(
        name="churner", image_bytes=64 * 1024, space_bytes=128 * 1024,
        code_bytes=48 * 1024, body_factory=churner_program(),
    ))
    registry.register(ProgramImage(
        name="bigjob", image_bytes=256 * 1024, space_bytes=1024 * 1024,
        code_bytes=200 * 1024,
        body_factory=churner_program(iterations=2000, space_pages=500),
    ))
    return build_cluster(n_workstations=n, seed=seed, registry=registry, **kwargs)


def start_remote_program(cluster, program="churner", where="ws1"):
    """Session on ws0 starts a program remotely; returns holders that
    fill in as the simulation runs."""
    state = {}

    def session(ctx):
        pid, pm = yield from exec_program(ctx, program, where=where)
        state["pid"] = pid
        state["origin_pm"] = pm
        code = yield from wait_for_program(pm, pid)
        state["exit_code"] = code

    cluster.spawn_session(cluster.workstations[0], session)
    return state


class TestBasicMigration:
    def test_program_migrates_and_completes(self):
        cluster = make_cluster()
        state = start_remote_program(cluster)
        cluster.run(until_us=2_000_000)  # program is running on ws1
        pid = state["pid"]
        results = []

        def migrator(ctx):
            reply = yield from migrate_program(pid)
            results.append(reply)

        cluster.spawn_session(cluster.workstations[0], migrator, name="migrator")
        cluster.run(until_us=60_000_000)
        assert results and results[0]["ok"], results
        assert results[0]["dest"] in {"ws0", "ws2"}  # any other idle host
        # The program still ran to completion and the waiter got its code.
        assert state.get("exit_code") == 0

    def test_pid_unchanged_after_migration(self):
        cluster = make_cluster()
        state = start_remote_program(cluster)
        cluster.run(until_us=2_000_000)
        pid = state["pid"]
        results = []

        def migrator(ctx):
            reply = yield from migrate_program(pid)
            results.append(reply)

        cluster.spawn_session(cluster.workstations[0], migrator, name="migrator")
        # Inspect the moment the migration completes, while the program
        # is still running at its new home.
        while not results and cluster.sim.peek() is not None:
            cluster.sim.run(until_us=cluster.sim.now + 50_000)
        assert results[0]["ok"]
        # Same pid, now resolving on the destination host.
        monitor = ClusterMonitor(cluster)
        dest = monitor.host_of_lhid(pid.logical_host_id)
        assert dest in {"ws0", "ws2"}
        pcb = cluster.station(dest).kernel.find_pcb(pid)
        assert pcb is not None
        assert pcb.pid == pid
        assert cluster.workstations[1].kernel.find_pcb(pid) is None

    def test_address_space_is_identical_after_migration(self):
        cluster = make_cluster()
        state = start_remote_program(cluster, program="churner")
        cluster.run(until_us=2_000_000)
        pid = state["pid"]
        src_kernel = cluster.workstations[1].kernel
        src_space = src_kernel.find_pcb(pid).space
        results = []

        def migrator(ctx):
            reply = yield from migrate_program(pid)
            results.append(reply)

        cluster.spawn_session(cluster.workstations[0], migrator, name="migrator")
        # Run until the migration completes, then stop the world at once.
        while not results and cluster.sim.peek() is not None:
            cluster.sim.run(until_us=cluster.sim.now + 50_000)
        assert results and results[0]["ok"]
        monitor = ClusterMonitor(cluster)
        dest = monitor.host_of_lhid(pid.logical_host_id)
        dst_space = cluster.station(dest).kernel.find_pcb(pid).space
        # Versions the destination holds are never *ahead* of the source,
        # and every page version is at least the source's at freeze time.
        # Since the program resumed at the destination, its versions can
        # only have grown; sizes must match exactly.
        assert dst_space.size_bytes == src_space.size_bytes

    def test_migration_stats_show_precopy_behaviour(self):
        cluster = make_cluster()
        state = start_remote_program(cluster, program="churner")
        cluster.run(until_us=2_000_000)
        pid = state["pid"]
        results = []

        def migrator(ctx):
            reply = yield from migrate_program(pid)
            results.append(reply)

        cluster.spawn_session(cluster.workstations[0], migrator, name="migrator")
        cluster.run(until_us=30_000_000)
        stats = results[0]["stats"]
        assert stats.success
        # Round 0 copies the whole space; later rounds copy fewer pages.
        assert stats.precopy_rounds >= 1
        assert stats.rounds[0].pages == 64  # 128 KB / 2 KB
        if stats.precopy_rounds > 1:
            assert stats.rounds[1].pages < stats.rounds[0].pages
        # Freeze time is far below the full-copy time (~400 ms for 128 KB).
        assert stats.freeze_us < 200_000
        assert stats.residual_bytes <= 70 * 1024

    def test_migrating_whole_logical_host_moves_subprocesses(self):
        cluster = make_cluster()
        pids = {}

        def parent_body(ctx):
            # Spawn a subprogram in the same logical host, then work.
            pid, pm = yield from exec_program(
                ctx, "churner", lhid=ctx.self_pid.logical_host_id
            )
            pids["child"] = pid
            yield Compute(10_000_000)
            return 0

        cluster.registry.register(ProgramImage(
            name="parent", image_bytes=64 * 1024, space_bytes=128 * 1024,
            code_bytes=48 * 1024, body_factory=parent_body,
        ))
        state = start_remote_program(cluster, program="parent", where="ws1")
        cluster.run(until_us=3_000_000)
        assert "child" in pids
        results = []

        def migrator(ctx):
            reply = yield from migrate_program(state["pid"])
            results.append(reply)

        cluster.spawn_session(cluster.workstations[0], migrator, name="migrator")
        while not results and cluster.sim.peek() is not None:
            cluster.sim.run(until_us=cluster.sim.now + 50_000)
        assert results[0]["ok"]
        monitor = ClusterMonitor(cluster)
        dest = monitor.host_of_lhid(state["pid"].logical_host_id)
        dest_kernel = cluster.station(dest).kernel
        assert dest_kernel.find_pcb(state["pid"]) is not None
        assert dest_kernel.find_pcb(pids["child"]) is not None


class TestMigrationTransparency:
    def test_client_talking_to_migrating_server_loses_nothing(self):
        """A server is migrated while a client hammers it with requests:
        the client sees every reply exactly once, in order."""
        cluster = make_cluster()
        server_state = {}

        def counting_server(ctx):
            # Serve 40 requests, echoing a running counter.
            for n in range(40):
                sender, msg = yield Receive()
                yield Compute(5_000)
                yield Reply(sender, msg.replying(n=n))
            return 0

        cluster.registry.register(ProgramImage(
            name="countsrv", image_bytes=40 * 1024, space_bytes=96 * 1024,
            code_bytes=32 * 1024, body_factory=counting_server,
        ))

        def server_session(ctx):
            pid, pm = yield from exec_program(ctx, "countsrv", where="ws1")
            server_state["pid"] = pid

        cluster.spawn_session(cluster.workstations[0], server_session, name="ssess")
        cluster.run(until_us=2_000_000)
        server_pid = server_state["pid"]

        got = []

        def client_body():
            for i in range(40):
                reply = yield Send(server_pid, Message("ping", i=i))
                got.append(reply["n"])
                yield Delay(100_000)

        ws0 = cluster.workstations[0]
        lh = ws0.kernel.create_logical_host()
        ws0.kernel.allocate_space(lh, 8192)
        ws0.kernel.create_process(lh, client_body(), name="hammer")

        results = []

        def migrator(ctx):
            yield Delay(500_000)  # mid-conversation
            reply = yield from migrate_program(server_pid)
            results.append(reply)

        cluster.spawn_session(cluster.workstations[0], migrator, name="migrator")
        cluster.run(until_us=120_000_000)
        assert results and results[0]["ok"]
        assert got == list(range(40))  # exactly once, in order

    def test_sender_mid_rpc_survives_migration_of_replier(self):
        """A client whose request is in flight when the freeze lands gets
        its reply after the migration (queued request is NAKed, client
        retransmits to the new host)."""
        cluster = make_cluster()
        server_state = {}

        def slow_server(ctx):
            sender, msg = yield Receive()
            yield Compute(3_000_000)  # long enough to freeze mid-service
            yield Reply(sender, msg.replying(done=True))
            return 0

        cluster.registry.register(ProgramImage(
            name="slowsrv", image_bytes=40 * 1024, space_bytes=96 * 1024,
            code_bytes=32 * 1024, body_factory=slow_server,
        ))

        def server_session(ctx):
            pid, pm = yield from exec_program(ctx, "slowsrv", where="ws1")
            server_state["pid"] = pid

        cluster.spawn_session(cluster.workstations[0], server_session, name="ssess")
        cluster.run(until_us=2_000_000)

        got = []

        def client_body():
            reply = yield Send(server_state["pid"], Message("work"))
            got.append(reply["done"])

        ws0 = cluster.workstations[0]
        lh = ws0.kernel.create_logical_host()
        ws0.kernel.allocate_space(lh, 8192)
        ws0.kernel.create_process(lh, client_body(), name="client")

        results = []

        def migrator(ctx):
            yield Delay(300_000)
            reply = yield from migrate_program(server_state["pid"])
            results.append(reply)

        cluster.spawn_session(cluster.workstations[0], migrator, name="migrator")
        cluster.run(until_us=120_000_000)
        assert results and results[0]["ok"], results
        assert got == [True]

    def test_migrated_program_keeps_its_outstanding_rpc(self):
        """A program that is itself awaiting a reply when migrated
        receives that reply at its new home (retained-reply recovery)."""
        cluster = make_cluster()
        noted = {}

        def slow_oracle():
            sender, msg = yield Receive()
            yield Compute(4_000_000)
            yield Reply(sender, msg.replying(answer=42))

        ws0 = cluster.workstations[0]
        olh = ws0.kernel.create_logical_host()
        ws0.kernel.allocate_space(olh, 8192)
        oracle = ws0.kernel.create_process(olh, slow_oracle(), name="oracle")

        def asker_body(ctx):
            reply = yield Send(oracle.pid, Message("ask"))
            noted["answer"] = reply["answer"]
            return 0

        cluster.registry.register(ProgramImage(
            name="asker", image_bytes=40 * 1024, space_bytes=96 * 1024,
            code_bytes=32 * 1024, body_factory=asker_body,
        ))
        state = start_remote_program(cluster, program="asker", where="ws1")
        cluster.run(until_us=1_500_000)  # asker has sent, oracle is chewing
        results = []

        def migrator(ctx):
            reply = yield from migrate_program(state["pid"])
            results.append(reply)

        cluster.spawn_session(cluster.workstations[0], migrator, name="migrator")
        cluster.run(until_us=120_000_000)
        assert results and results[0]["ok"], results
        assert noted.get("answer") == 42
        assert state.get("exit_code") == 0


class TestMigrationFailure:
    def test_no_candidate_leaves_program_running(self):
        from repro.services.program_manager import AcceptPolicy

        cluster = make_cluster(n=2, accept_policy=AcceptPolicy(max_program_processes=1))
        state = start_remote_program(cluster, where="ws1")
        cluster.run(until_us=2_000_000)
        results = []

        def migrator(ctx):
            reply = yield from migrate_program(state["pid"])
            results.append(reply)

        cluster.spawn_session(cluster.workstations[0], migrator, name="migrator")
        cluster.run(until_us=60_000_000)
        assert results and not results[0]["ok"]
        assert "no candidate" in results[0]["error"]
        # The -n flag was absent: the program survived and finished.
        assert state.get("exit_code") == 0

    def test_destroy_if_stranded_flag(self):
        from repro.services.program_manager import AcceptPolicy

        cluster = make_cluster(n=2, accept_policy=AcceptPolicy(max_program_processes=1))
        state = start_remote_program(cluster, where="ws1")
        cluster.run(until_us=2_000_000)
        results = []

        def migrator(ctx):
            reply = yield from migrate_program(state["pid"], destroy_if_stranded=True)
            results.append(reply)

        cluster.spawn_session(cluster.workstations[0], migrator, name="migrator")
        cluster.run(until_us=60_000_000)
        assert results and not results[0]["ok"]
        assert "destroyed" in results[0]["error"]
        assert cluster.workstations[1].kernel.find_pcb(state["pid"]) is None

    def test_destination_crash_mid_copy_unfreezes_original(self):
        cluster = make_cluster(n=3)
        state = start_remote_program(cluster, program="bigjob", where="ws1")
        cluster.run(until_us=3_000_000)
        results = []
        dest_pm_pid = cluster.pm("ws2").pcb.pid

        def migrator(ctx):
            reply = yield from migrate_program(state["pid"], dest_pm=dest_pm_pid)
            results.append(reply)

        cluster.spawn_session(cluster.workstations[0], migrator, name="migrator")
        # Let the pre-copy start (bigjob: ~3 s for the first round), then
        # crash the destination mid-copy.
        cluster.run(until_us=4_500_000)
        cluster.workstations[2].crash()
        cluster.sim.strict = False  # the crash strands server loops
        cluster.run(until_us=300_000_000)
        assert results and not results[0]["ok"]
        # The program is still alive (or finished) on ws1.
        pcb = cluster.workstations[1].kernel.find_pcb(state["pid"])
        assert pcb is not None or state.get("exit_code") == 0


class TestMigrateprogCommand:
    def test_migrate_all_remote_clears_workstation(self):
        cluster = make_cluster(n=4)
        states = [
            start_remote_program(cluster, where="ws1"),
            start_remote_program(cluster, where="ws1"),
        ]
        cluster.run(until_us=3_000_000)
        results = []

        def migrator(ctx):
            pm_pid = cluster.pm("ws1").pcb.pid
            outcome = yield from migrate_all_remote(pm_pid)
            results.append(outcome)

        cluster.spawn_session(cluster.workstations[0], migrator, name="migrator")
        cluster.run(until_us=120_000_000)
        assert results
        outcomes = results[0]
        assert len(outcomes) == 2
        assert all(reply["ok"] for _, reply in outcomes)
        # ws1 no longer runs any remote program.
        assert cluster.pm("ws1").remote_program_lhids() == []


class TestResidualDependencies:
    def test_no_traffic_to_old_host_after_migration(self):
        from repro.migration.residual import ResidualAuditor

        cluster = make_cluster()
        state = start_remote_program(cluster, program="churner", where="ws1")
        cluster.run(until_us=2_000_000)
        pid = state["pid"]
        auditor = ResidualAuditor(cluster.net)
        results = []

        def migrator(ctx):
            reply = yield from migrate_program(pid)
            results.append(reply)

        cluster.spawn_session(cluster.workstations[0], migrator, name="migrator")
        while not results and cluster.sim.peek() is not None:
            cluster.sim.run(until_us=cluster.sim.now + 50_000)
        assert results[0]["ok"]
        old_addr = cluster.workstations[1].address
        auditor.watch(pid.logical_host_id, old_addr)
        cluster.run(until_us=120_000_000)
        assert state.get("exit_code") == 0
        assert auditor.violation_count(pid.logical_host_id, old_addr) == 0

    def test_old_host_reboot_does_not_kill_migrated_program(self):
        cluster = make_cluster()
        state = start_remote_program(cluster, program="churner", where="ws1")
        cluster.run(until_us=2_000_000)
        pid = state["pid"]
        results = []

        def migrator(ctx):
            reply = yield from migrate_program(pid)
            results.append(reply)

        cluster.spawn_session(cluster.workstations[0], migrator, name="migrator")
        while not results and cluster.sim.peek() is not None:
            cluster.sim.run(until_us=cluster.sim.now + 50_000)
        assert results[0]["ok"]
        # The old host dies outright.
        cluster.workstations[1].crash()
        cluster.sim.strict = False
        cluster.run(until_us=200_000_000)
        # The migrated program still completed and notified its waiter.
        assert state.get("exit_code") == 0
