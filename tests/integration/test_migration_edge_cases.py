"""Migration edge cases: suspended victims, delaying victims, VM under
loss, and exit-during-migration."""

import pytest

from repro.cluster import build_cluster
from repro.cluster.monitor import ClusterMonitor
from repro.execution import ProgramImage, exec_program, wait_for_program
from repro.ipc.messages import Message
from repro.kernel.process import Compute, Delay, Priority, Send
from repro.migration.migrateprog import migrate_program
from repro.net import BernoulliLoss
from repro.workloads import standard_registry


def make_cluster(n=3, seed=0, scale=0.3, **kwargs):
    return build_cluster(n_workstations=n, seed=seed,
                         registry=standard_registry(scale=scale), **kwargs)


def launch(cluster, program="longsim", where="ws1"):
    holder = {}

    def session(ctx):
        pid, pm = yield from exec_program(ctx, program, where=where)
        holder["pid"] = pid
        code = yield from wait_for_program(pm, pid)
        holder["code"] = code

    cluster.spawn_session(cluster.workstations[0], session,
                          name=f"l-{program}")
    return holder


def run_until(cluster, predicate, limit_us=600_000_000):
    while not predicate() and cluster.sim.now < limit_us:
        if cluster.sim.peek() is None:
            break
        cluster.sim.run(until_us=cluster.sim.now + 100_000)
    return predicate()


def do_migrate(cluster, pid, **kw):
    replies = []

    def migrator(ctx):
        reply = yield from migrate_program(pid, **kw)
        replies.append(reply)

    cluster.spawn_session(cluster.workstations[0], migrator, name="mig")
    assert run_until(cluster, lambda: bool(replies))
    return replies[0]


class TestSuspendedVictim:
    def test_suspended_program_migrates_and_resumes_elsewhere(self):
        """Suspension state is kernel state: it must travel.  A program
        suspended before migration stays suspended at its new home and
        runs to completion once resumed there."""
        cluster = make_cluster()
        job = launch(cluster)
        assert run_until(cluster, lambda: "pid" in job)
        pid = job["pid"]
        control = []

        def suspender(ctx):
            from repro.kernel.ids import local_program_manager_group

            reply = yield Send(local_program_manager_group(pid.logical_host_id),
                               Message("suspend-program", pid=pid))
            control.append(reply.kind)

        cluster.spawn_session(cluster.workstations[0], suspender, name="susp")
        assert run_until(cluster, lambda: bool(control))
        reply = do_migrate(cluster, pid)
        assert reply["ok"], reply.get("error")
        monitor = ClusterMonitor(cluster)
        dest = monitor.host_of_lhid(pid.logical_host_id)
        pcb = cluster.station(dest).kernel.find_pcb(pid)
        assert pcb.suspended
        assert pcb.state_label() == "suspended"
        # Resume at the new home; the job completes.
        resumed = []

        def resumer(ctx):
            from repro.kernel.ids import local_program_manager_group

            r = yield Send(local_program_manager_group(pid.logical_host_id),
                           Message("resume-program", pid=pid))
            resumed.append(r.kind)

        cluster.spawn_session(cluster.workstations[0], resumer, name="res")
        cluster.run(until_us=600_000_000)
        assert resumed == ["ok"]
        assert job.get("code") == 0


class TestDelayingVictim:
    def test_sleep_deadline_survives_migration(self):
        """A program mid-Delay when frozen wakes at (approximately) its
        original deadline on the new host, not a reset timer."""
        cluster = make_cluster()
        woke = []

        def sleeper_body(ctx):
            yield Compute(100_000)
            intended = ctx.sim.now + 20_000_000
            yield Delay(20_000_000)
            woke.append((ctx.sim.now, intended))
            return 0

        cluster.registry.register(ProgramImage(
            name="sleeper", image_bytes=30 * 1024, space_bytes=64 * 1024,
            code_bytes=24 * 1024, body_factory=sleeper_body,
        ))
        job = launch(cluster, program="sleeper")
        assert run_until(cluster, lambda: "pid" in job)
        cluster.run(until_us=cluster.sim.now + 1_000_000)  # asleep now
        reply = do_migrate(cluster, job["pid"])
        assert reply["ok"], reply.get("error")
        cluster.run(until_us=600_000_000)
        assert woke, "sleeper never woke after migration"
        actual, intended = woke[0]
        # Woke within a second of the original deadline (not 20 s late).
        assert abs(actual - intended) < 1_000_000
        assert job.get("code") == 0


class TestVmFlushUnderLoss:
    def test_vm_migration_completes_with_lossy_wire(self):
        from repro.kernel.process import Priority as Prio
        from repro.migration.vm_flush import run_vm_flush_migration
        from repro.vm import attach_pager

        cluster = make_cluster(seed=29, scale=3.0, loss=BernoulliLoss(0.08))
        job = launch(cluster, program="optimizer")
        assert run_until(cluster, lambda: "pid" in job)
        cluster.run(until_us=cluster.sim.now + 500_000)
        kernel = cluster.workstations[1].kernel
        lh = kernel.logical_hosts[job["pid"].logical_host_id]
        for space in lh.spaces:
            attach_pager(kernel, space)
        results = []

        def mgr():
            stats = yield from run_vm_flush_migration(kernel, lh)
            results.append(stats)

        kernel.create_process(
            cluster.pm("ws1").pcb.logical_host, mgr(),
            priority=Prio.MIGRATION, name="vm-mgr",
        )
        assert run_until(cluster, lambda: bool(results))
        assert results[0].success, results[0].error
        cluster.run(until_us=900_000_000)
        assert job.get("code") == 0


class TestExitDuringMigration:
    def test_victim_exit_mid_precopy_aborts_cleanly(self):
        """A short program that finishes while its (large) address space
        is still being pre-copied: migration reports the exit, the shell
        is torn down, and the waiter still gets the exit code."""
        cluster = make_cluster()

        def quick_body(ctx):
            yield Compute(800_000)
            return 0

        cluster.registry.register(ProgramImage(
            name="quickie", image_bytes=600 * 1024, space_bytes=900 * 1024,
            code_bytes=500 * 1024, body_factory=quick_body,
        ))
        job = launch(cluster, program="quickie")
        assert run_until(cluster, lambda: "pid" in job)
        reply = do_migrate(cluster, job["pid"])
        assert not reply["ok"]
        assert "exited during migration" in reply["error"]
        cluster.run(until_us=600_000_000)
        assert job.get("code") == 0
        # No stray shells anywhere.
        for ws in cluster.workstations:
            assert all(not lh.is_shell
                       for lh in ws.kernel.logical_hosts.values())


class TestConcurrentMigrateRequests:
    def test_second_migrate_out_for_same_program_is_refused(self):
        """Two users ask to migrate the same program at once: the second
        request is refused cleanly instead of racing the first (double
        freeze / double transfer)."""
        import pytest as _pytest

        from repro.errors import MigrationError

        cluster = make_cluster()
        job = launch(cluster)
        assert run_until(cluster, lambda: "pid" in job)
        pid = job["pid"]
        outcomes = []

        def migrator(ctx, tag):
            try:
                reply = yield from migrate_program(pid)
                outcomes.append((tag, reply["ok"], reply.get("error")))
            except MigrationError as exc:
                outcomes.append((tag, False, str(exc)))

        cluster.spawn_session(cluster.workstations[0],
                              lambda ctx: migrator(ctx, "a"), name="m-a")
        cluster.spawn_session(cluster.workstations[0],
                              lambda ctx: migrator(ctx, "b"), name="m-b")
        assert run_until(cluster, lambda: len(outcomes) == 2)
        succeeded = [o for o in outcomes if o[1]]
        refused = [o for o in outcomes if not o[1]]
        assert len(succeeded) == 1
        assert len(refused) == 1
        assert "already in progress" in refused[0][2]
        cluster.run(until_us=600_000_000)
        assert job.get("code") == 0

    def test_program_can_migrate_again_after_first_completes(self):
        cluster = make_cluster(n=4)
        job = launch(cluster)
        assert run_until(cluster, lambda: "pid" in job)
        pid = job["pid"]
        first = do_migrate(cluster, pid)
        assert first["ok"]
        second = do_migrate(cluster, pid)
        assert second["ok"], second.get("error")
        cluster.run(until_us=600_000_000)
        assert job.get("code") == 0
