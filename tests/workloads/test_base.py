"""Unit tests for the generic workload body machinery."""

import pytest

from repro.cluster import build_cluster
from repro.execution import ProgramImage, ProgramRegistry, exec_program
from repro.workloads.base import dirty_workload_body, measure_dirty_kb
from repro.workloads.dirty_model import TwoPoolDirtyModel


def make_cluster_with(model, duration_us, base_page=0):
    registry = ProgramRegistry()

    def factory(ctx):
        return dirty_workload_body(model, duration_us, base_page=base_page)(ctx)

    registry.register(ProgramImage(
        name="wl", image_bytes=20 * 1024, space_bytes=256 * 1024,
        code_bytes=16 * 1024, body_factory=factory,
    ))
    return build_cluster(n_workstations=2, registry=registry, seed=3)


def test_body_runs_for_requested_duration():
    model = TwoPoolDirtyModel(4, 50.0, 16, 2.0)
    cluster = make_cluster_with(model, duration_us=2_000_000)
    holder = {}

    def session(ctx):
        pid, pm = yield from exec_program(ctx, "wl")
        holder["pid"] = pid
        holder["start"] = ctx.sim.now
        from repro.execution import wait_for_program

        code = yield from wait_for_program(pm, pid)
        holder["done"] = ctx.sim.now
        holder["code"] = code

    cluster.spawn_session(cluster.workstations[0], session)
    cluster.run(until_us=60_000_000)
    assert holder["code"] == 0
    elapsed = holder["done"] - holder["start"]
    # "start" is captured when the start-reply reaches the requester; the
    # body begins a few ms earlier, so allow that skew.
    assert elapsed >= 1_950_000


def test_body_dirties_only_above_base_page():
    model = TwoPoolDirtyModel(8, 500.0, 8, 100.0)
    cluster = make_cluster_with(model, duration_us=3_000_000, base_page=20)
    holder = {}

    def session(ctx):
        pid, pm = yield from exec_program(ctx, "wl")
        holder["pid"] = pid

    cluster.spawn_session(cluster.workstations[0], session)
    while "pid" not in holder and cluster.sim.peek() is not None:
        cluster.sim.run(until_us=cluster.sim.now + 100_000)
    pcb = cluster.workstations[0].kernel.find_pcb(holder["pid"])
    space = pcb.space
    for page in space.pages:
        page.dirty = False
    cluster.run(until_us=cluster.sim.now + 1_000_000)
    dirty = [p.index for p in space.pages if p.dirty]
    assert dirty
    assert all(20 <= i < 36 for i in dirty)


def test_body_requires_sim_in_context():
    from repro.execution import ProgramContext
    from repro.kernel.ids import Pid

    model = TwoPoolDirtyModel(1, 1.0, 1, 1.0)
    body = dirty_workload_body(model, 1_000_000)
    ctx = ProgramContext(self_pid=Pid(1, 1))  # no sim attached
    with pytest.raises(ValueError):
        next(body(ctx))


def test_measure_dirty_kb_counts_and_clears():
    from repro.config import PAGE_SIZE
    from repro.kernel import AddressSpace

    space = AddressSpace(PAGE_SIZE * 10)
    space.touch_pages([2, 5, 7])
    kb = measure_dirty_kb(None, space, interval_us=0)
    assert kb == 3 * PAGE_SIZE / 1024
    assert space.dirty_pages() == []


def test_measure_dirty_kb_respects_window():
    from repro.config import PAGE_SIZE
    from repro.kernel import AddressSpace

    space = AddressSpace(PAGE_SIZE * 10)
    space.touch_pages([1, 5, 9])
    kb = measure_dirty_kb(None, space, interval_us=0, base_page=4, n_pages=3)
    assert kb == PAGE_SIZE / 1024  # only page 5 is inside [4, 7)
