"""Unit tests for the two-pool dirty model and the Table 4-1 fits."""

import math
import random

import pytest

from repro.workloads.dirty_model import PAGE_KB, TwoPoolDirtyModel
from repro.workloads.table41 import (
    FIT_INTERVALS_S,
    FITTED_MODELS,
    TABLE_4_1_KB,
    dirty_model_for,
)


class TestModelAnalytics:
    def test_expected_dirty_is_monotone_in_time(self):
        model = TwoPoolDirtyModel(10, 50.0, 100, 2.0)
        values = [model.expected_dirty_kb(t) for t in (10_000, 100_000, 1_000_000, 10_000_000)]
        assert values == sorted(values)

    def test_expected_dirty_bounded_by_footprint(self):
        model = TwoPoolDirtyModel(10, 50.0, 100, 2.0)
        assert model.expected_dirty_pages(10**9) <= model.total_pages

    def test_zero_interval_dirties_nothing(self):
        model = TwoPoolDirtyModel(10, 50.0, 100, 2.0)
        assert model.expected_dirty_kb(0) == 0.0

    def test_hot_pool_saturates_fast(self):
        model = TwoPoolDirtyModel(4, 400.0, 0, 0.0)
        # At 100 ms the hot pool is essentially fully dirty.
        assert model.expected_dirty_pages(100_000) > 3.99

    def test_validation(self):
        with pytest.raises(ValueError):
            TwoPoolDirtyModel(0, 1.0, 1, 1.0)
        with pytest.raises(ValueError):
            TwoPoolDirtyModel(1, -1.0, 1, 1.0)

    def test_total_pages(self):
        assert TwoPoolDirtyModel(3, 1.0, 7, 1.0).total_pages == 10


class TestSampler:
    def test_sampler_expectation_matches_analytic(self):
        """Per-page Bernoulli sampling reproduces the analytic curve."""
        model = TwoPoolDirtyModel(10, 80.0, 60, 4.0)
        rng = random.Random(7)
        interval_us = 1_000_000
        tick_us = 20_000
        trials = 60
        total_distinct = 0
        for _ in range(trials):
            dirty = set()
            for _ in range(interval_us // tick_us):
                dirty.update(model.tick_pages(rng, tick_us))
            total_distinct += len(dirty)
        measured = total_distinct / trials
        expected = model.expected_dirty_pages(interval_us)
        assert abs(measured - expected) / expected < 0.08

    def test_sampler_respects_base_page(self):
        model = TwoPoolDirtyModel(5, 1000.0, 5, 1000.0)
        rng = random.Random(1)
        pages = model.tick_pages(rng, 100_000, base_page=100)
        assert pages and all(100 <= p < 110 for p in pages)

    def test_sampler_deterministic_per_seed(self):
        model = TwoPoolDirtyModel(10, 80.0, 60, 4.0)
        a = model.tick_pages(random.Random(3), 50_000)
        b = model.tick_pages(random.Random(3), 50_000)
        assert a == b


class TestTable41Fits:
    @pytest.mark.parametrize("program", sorted(TABLE_4_1_KB))
    def test_fit_matches_paper_row(self, program):
        """Every fitted model reproduces its Table 4-1 row.

        Tolerance: 0.5 KB except the linking loader, whose published row
        is non-monotone (39.2 KB at 1 s vs 37.8 KB at 3 s) and admits no
        exact monotone fit; we require 1.5 KB there.
        """
        model = FITTED_MODELS[program]
        tolerance = 1.5 if program == "linking_loader" else 0.5
        for t_s, target_kb in zip(FIT_INTERVALS_S, TABLE_4_1_KB[program]):
            fitted = model.expected_dirty_kb(int(t_s * 1_000_000))
            assert abs(fitted - target_kb) <= tolerance, (
                f"{program} at {t_s}s: fitted {fitted:.2f} vs paper {target_kb}"
            )

    def test_all_eight_programs_fitted(self):
        assert set(FITTED_MODELS) == set(TABLE_4_1_KB)
        assert len(FITTED_MODELS) == 8

    def test_dirty_model_for_unknown_program(self):
        with pytest.raises(KeyError):
            dirty_model_for("emacs")

    def test_compiler_phases_dirty_more_than_control_programs(self):
        """The paper's qualitative shape: make/cc68 barely write; the
        compiler phases and tex write heavily."""
        one_sec = 1_000_000
        for control in ("make", "cc68"):
            for worker in ("preprocessor", "parser", "tex"):
                assert (
                    FITTED_MODELS[control].expected_dirty_kb(one_sec) * 10
                    < FITTED_MODELS[worker].expected_dirty_kb(one_sec)
                )

    def test_tex_is_heaviest_dirtier(self):
        one_sec = 1_000_000
        tex = FITTED_MODELS["tex"].expected_dirty_kb(one_sec)
        assert all(
            FITTED_MODELS[p].expected_dirty_kb(one_sec) <= tex
            for p in FITTED_MODELS
        )


class TestFitProcedure:
    def test_fit_two_pool_recovers_known_model(self):
        pytest.importorskip("scipy")
        from repro.workloads.dirty_model import fit_two_pool

        truth = TwoPoolDirtyModel(12, 90.0, 32, 5.0)
        targets = [
            truth.expected_dirty_kb(int(t * 1_000_000)) for t in (0.2, 1.0, 3.0)
        ]
        fitted = fit_two_pool(targets)
        for t in (0.2, 1.0, 3.0):
            us = int(t * 1_000_000)
            assert abs(fitted.expected_dirty_kb(us) - truth.expected_dirty_kb(us)) < 0.5
