"""Integration tests for the standard workload programs on a cluster."""

import pytest

from repro.cluster import build_cluster
from repro.execution import exec_and_wait, exec_program, wait_for_program
from repro.workloads import standard_registry
from repro.workloads.programs import ALL_SPECS, CC68_PHASES


def make_cluster(n=3, scale=0.1, seed=0, **kwargs):
    return build_cluster(
        n_workstations=n, seed=seed, registry=standard_registry(scale=scale), **kwargs
    )


class TestSpecs:
    def test_all_specs_registered(self):
        registry = standard_registry()
        for name in ("make", "cc68", "preprocessor", "parser", "optimizer",
                     "assembler", "linking_loader", "tex", "longsim"):
            assert name in registry

    def test_space_holds_image_and_working_set(self):
        for spec in ALL_SPECS.values():
            assert spec.space_bytes >= spec.image_bytes
            assert spec.base_page * 2048 >= spec.image_bytes
            assert (spec.base_page + spec.model.total_pages) * 2048 <= spec.space_bytes

    def test_phase_order(self):
        assert [s.name for s in CC68_PHASES] == [
            "preprocessor", "parser", "optimizer", "assembler", "linking_loader",
        ]


class TestRunningWorkloads:
    def test_tex_runs_to_completion(self):
        cluster = make_cluster()
        results = []

        def session(ctx):
            code = yield from exec_and_wait(ctx, "tex")
            results.append(code)

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=60_000_000)
        assert results == [0]

    def test_tex_dirties_pages_at_fitted_rate(self):
        from repro.config import PAGE_SIZE
        from repro.workloads import FITTED_MODELS

        cluster = make_cluster(scale=1.0)
        holder = {}

        def session(ctx):
            pid, pm = yield from exec_program(ctx, "tex")
            holder["pid"] = pid

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=3_000_000)  # tex is mid-run locally
        pcb = cluster.workstations[0].kernel.find_pcb(holder["pid"])
        assert pcb is not None
        space = pcb.space
        # Clear, run 1 s, count dirty working-set pages.
        space.collect_dirty()
        cluster.run(until_us=cluster.sim.now + 1_000_000)
        base = ALL_SPECS["tex"].base_page
        dirty_kb = sum(
            PAGE_SIZE // 1024 for p in space.dirty_pages() if p.index >= base
        )
        expected = FITTED_MODELS["tex"].expected_dirty_kb(1_000_000)
        # Paper: 111.6 KB/s; allow sampling noise.
        assert expected * 0.6 < dirty_kb < expected * 1.4

    def test_cc68_pipeline_runs_all_phases(self):
        cluster = make_cluster()
        results = []

        def session(ctx):
            code = yield from exec_and_wait(ctx, "cc68", args=("prog.c",))
            results.append(code)

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=120_000_000)
        assert results == [0]
        # All five phases were created (plus cc68 and the session).
        pm = cluster.pm("ws0")
        names = {record.name for record in pm.records.values()}
        assert {"preprocessor", "parser", "optimizer", "assembler",
                "linking_loader", "cc68"} <= names

    def test_make_drives_cc68(self):
        cluster = make_cluster()
        results = []

        def session(ctx):
            code = yield from exec_and_wait(ctx, "make")
            results.append(code)

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=120_000_000)
        assert results == [0]

    def test_remote_compilation_while_editing(self):
        """The paper's motivating scenario: compile remotely while the
        user keeps editing locally (§1)."""
        from repro.cluster.owner import Owner

        cluster = make_cluster(n=3)
        owner = Owner(cluster.workstations[0])
        owner.arrive()
        results = []

        def session(ctx):
            code = yield from exec_and_wait(ctx, "cc68", args=("x.c",), where="*")
            results.append(code)

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=120_000_000)
        assert results == [0]
        # The editing owner never noticed: worst burst latency stayed small.
        assert owner.worst_interference_us() < 10_000

    def test_longsim_migrates_cleanly_mid_run(self):
        from repro.migration.migrateprog import migrate_program

        cluster = make_cluster(scale=0.2)
        holder = {}

        def session(ctx):
            pid, pm = yield from exec_program(ctx, "longsim", where="ws1")
            holder["pid"] = pid
            code = yield from wait_for_program(pm, pid)
            holder["code"] = code

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=5_000_000)
        results = []

        def migrator(ctx):
            reply = yield from migrate_program(holder["pid"])
            results.append(reply)

        cluster.spawn_session(cluster.workstations[0], migrator, name="migrator")
        cluster.run(until_us=120_000_000)
        assert results and results[0]["ok"]
        assert holder.get("code") == 0


def test_make_with_multiple_targets():
    """make compiles each named target sequentially (the paper's
    recompile-everything-after-the-fix scenario)."""
    cluster = make_cluster(n=4, scale=0.05)
    results = []

    def session(ctx):
        code = yield from exec_and_wait(ctx, "make", args=("a.c", "b.c"))
        results.append(code)

    cluster.spawn_session(cluster.workstations[0], session)
    cluster.run(until_us=600_000_000)
    assert results == [0]
    # Two cc68 pipelines actually ran.
    pm = cluster.pm("ws0")
    cc68_records = [r for r in pm.records.values() if r.name == "cc68"]
    assert len(cc68_records) == 2
