"""Sweep engine: merging, retries, scenario registry, metrics."""

import dataclasses
import json

import pytest

from repro.errors import SimulationError
from repro.parallel import (
    SweepSpec,
    get_scenario,
    register_scenario,
    run_sweep,
    scenario_names,
)
from repro.parallel.engine import SweepResult
from repro.parallel.worker import run_chunk


@register_scenario("_test_echo")
def _echo_scenario(config, seed, collect_metrics=False, warm=None):
    """No simulator at all -- echoes its inputs, for engine plumbing
    tests.  Registered at import time so forked workers see it."""
    if warm is not None:
        warm["calls"] = warm.get("calls", 0) + 1
    result = {"seed": seed, "config": dict(config), "sim_time_us": 0}
    if config.get("boom"):
        raise SimulationError("scenario asked to fail")
    if collect_metrics:
        result["metrics"] = {
            "per_host": {}, "cluster": {"test.runs": 1}, "sim_time_us": 5,
        }
    return result


class TestRegistry:
    def test_lookup_and_names(self):
        assert get_scenario("_test_echo") is _echo_scenario
        assert "_test_echo" in scenario_names()
        assert "migration" in scenario_names()
        assert "ping" in scenario_names()

    def test_unknown_scenario(self):
        with pytest.raises(SimulationError, match="unknown scenario"):
            get_scenario("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SimulationError, match="already registered"):
            register_scenario("_test_echo")(lambda *a, **k: {})


class TestRunChunk:
    def test_runs_units_in_order_with_their_seeds(self):
        spec = SweepSpec.from_grid("_test_echo", {"x": [1, 2]},
                                   replications=2, master_seed=3)
        triples = run_chunk("_test_echo", spec.units())
        assert [(ci, ri) for ci, ri, _ in triples] == [
            (0, 0), (0, 1), (1, 0), (1, 1)
        ]
        for ci, ri, result in triples:
            assert result["seed"] == spec.unit_seed(ci, ri)

    def test_chunk_failure_raises(self):
        spec = SweepSpec(scenario="_test_echo",
                         configs=({"boom": True},))
        with pytest.raises(SimulationError):
            run_chunk("_test_echo", spec.units())


class TestRunSweepSerial:
    def test_rows_are_config_major(self):
        spec = SweepSpec.from_grid("_test_echo", {"x": [10, 20]},
                                   replications=3, master_seed=1)
        result = run_sweep(spec)
        assert len(result.rows) == 2
        assert all(len(row) == 3 for row in result.rows)
        assert result.rows[1][0]["config"]["x"] == 20
        assert result.workers_used == 1

    def test_payload_excludes_wall_clock(self):
        result = run_sweep(SweepSpec(scenario="_test_echo", configs=({},)))
        payload = json.loads(result.to_json())
        assert "wall" not in result.to_json()
        assert set(payload) == {
            "scenario", "master_seed", "replications", "configs", "results"
        }
        assert result.wall_seconds >= 0  # attribute only

    def test_metrics_merged_across_replications(self):
        spec = SweepSpec(scenario="_test_echo", configs=({}, {}),
                         replications=2, collect_metrics=True)
        result = run_sweep(spec)
        merged = result.metrics
        assert merged["merged_from"] == 4
        assert merged["cluster"]["test.runs"] == 4
        assert merged["sim_time_us"] == 5          # max
        assert merged["sim_time_us_total"] == 20   # sum

    def test_run_report_rolls_up_the_sweep(self):
        from repro.obs.report import RUN_REPORT_VERSION

        spec = SweepSpec.from_grid("_test_echo", {"x": [10, 20]},
                                   replications=2, master_seed=3,
                                   collect_metrics=True)
        report = run_sweep(spec).run_report()
        assert report["run_report_version"] == RUN_REPORT_VERSION
        assert report["kind"] == "sweep"
        assert report["seed"] == 3
        assert report["config"]["scenario"] == "_test_echo"
        assert report["config"]["replications"] == 2
        assert report["kpis"]["runs"] == 4
        assert report["metrics"]["cluster"]["test.runs"] == 4
        # Deterministic: serial and parallel report identically.
        assert json.dumps(report, sort_keys=True) == json.dumps(
            run_sweep(spec).run_report(), sort_keys=True)

    def test_deterministic_failure_propagates(self):
        spec = SweepSpec(scenario="_test_echo", configs=({"boom": True},))
        with pytest.raises(SimulationError):
            run_sweep(spec)


class TestRunSweepParallel:
    def test_parallel_matches_serial_bytes(self):
        spec = SweepSpec.from_grid("_test_echo", {"x": [1, 2, 3]},
                                   replications=2, master_seed=5)
        serial = run_sweep(spec)
        parallel = run_sweep(dataclasses.replace(spec, workers=3))
        assert parallel.to_json() == serial.to_json()
        assert parallel.workers_used == 3

    def test_failed_chunks_fall_back_to_serial_and_raise(self):
        # A deterministic failure exhausts pool retries, then re-raises
        # from the in-parent fallback pass.
        spec = SweepSpec(scenario="_test_echo", configs=({"boom": True},),
                         workers=2, max_retries=1)
        with pytest.raises(SimulationError, match="asked to fail"):
            run_sweep(spec)

    def test_real_scenario_parallel(self):
        spec = SweepSpec.from_grid("ping", {"count": [3]},
                                   replications=2, master_seed=11,
                                   workers=2)
        result = run_sweep(spec)
        assert all(r["completed"] == 3 for r in result.rows[0])


class TestSweepResult:
    def test_summary_mentions_shape(self):
        result = run_sweep(SweepSpec.from_grid(
            "_test_echo", {"x": [1, 2]}, replications=3))
        assert "6 runs" in result.summary()
        assert "2 configs x 3 reps" in result.summary()

    def test_summary_reports_fallback(self):
        result = SweepResult(
            spec=SweepSpec(scenario="_test_echo", configs=({},)),
            rows=[[{}]], metrics=None, wall_seconds=0.5, workers_used=4,
            chunks=3, chunks_retried=2, chunks_fallback=1,
        )
        assert "2 chunk(s) retried" in result.summary()
        assert "1 chunk(s) fell back serial" in result.summary()
