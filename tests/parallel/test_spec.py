"""SweepSpec: grid expansion, seeding, chunking."""

import dataclasses

import pytest

from repro.errors import SimulationError
from repro.parallel import SweepSpec
from repro.sim.random import derive_seed


class TestFromGrid:
    def test_cartesian_product_sorted_row_major(self):
        spec = SweepSpec.from_grid(
            "ping", {"b": [1, 2], "a": ["x", "y"]}
        )
        # Sorted param names: a varies slowest.
        assert [tuple(sorted(c.items())) for c in spec.configs] == [
            (("a", "x"), ("b", 1)),
            (("a", "x"), ("b", 2)),
            (("a", "y"), ("b", 1)),
            (("a", "y"), ("b", 2)),
        ]

    def test_base_overlay(self):
        spec = SweepSpec.from_grid(
            "ping", {"count": [1, 2]}, base={"workstations": 5}
        )
        assert all(c["workstations"] == 5 for c in spec.configs)
        assert [c["count"] for c in spec.configs] == [1, 2]

    def test_empty_grid_is_one_base_config(self):
        spec = SweepSpec.from_grid("ping", {}, base={"count": 3})
        assert spec.configs == ({"count": 3},)

    def test_validation(self):
        with pytest.raises(SimulationError):
            SweepSpec(scenario="ping", configs=())
        with pytest.raises(SimulationError):
            SweepSpec(scenario="ping", configs=({},), replications=0)


class TestSeeding:
    def test_seed_is_pure_function_of_coordinates(self):
        spec = SweepSpec.from_grid("ping", {"count": [1, 2]},
                                   replications=3, master_seed=99)
        assert spec.unit_seed(1, 2) == derive_seed(99, "sweep:1:2")
        # Unchanged by worker count / chunking knobs.
        other = dataclasses.replace(spec, workers=8, chunk_size=1)
        assert other.unit_seed(1, 2) == spec.unit_seed(1, 2)

    def test_all_unit_seeds_distinct(self):
        spec = SweepSpec.from_grid("ping", {"count": [1, 2, 3]},
                                   replications=5)
        seeds = [seed for _, _, seed, _ in spec.units()]
        assert len(set(seeds)) == len(seeds)

    def test_different_master_seed_changes_all(self):
        a = SweepSpec(scenario="ping", configs=({},), replications=4)
        b = dataclasses.replace(a, master_seed=1)
        assert all(a.unit_seed(0, i) != b.unit_seed(0, i) for i in range(4))


class TestChunking:
    def test_chunks_cover_units_in_order(self):
        spec = SweepSpec.from_grid("ping", {"count": [1, 2, 3]},
                                   replications=4, chunk_size=5)
        flat = [u for chunk in spec.chunked_units() for u in chunk]
        assert flat == spec.units()
        assert all(len(c) <= 5 for c in spec.chunked_units())

    def test_auto_chunking_gives_multiple_rounds_per_worker(self):
        spec = SweepSpec.from_grid("ping", {"count": list(range(8))},
                                   replications=4, workers=2)
        chunks = spec.chunked_units()
        # 32 units over 2 workers: expect >= 2 chunks per worker.
        assert len(chunks) >= 4
        assert sum(len(c) for c in chunks) == spec.n_units

    def test_units_are_config_major(self):
        spec = SweepSpec.from_grid("ping", {"count": [1, 2]}, replications=2)
        assert [(ci, ri) for ci, ri, _, _ in spec.units()] == [
            (0, 0), (0, 1), (1, 0), (1, 1)
        ]
