"""Unit tests for the program registry and execution contexts."""

import pytest

from repro.config import PAGE_SIZE
from repro.errors import ProgramNotFoundError
from repro.execution import ProgramContext, ProgramImage, ProgramRegistry
from repro.kernel.ids import (
    KERNEL_SERVER_INDEX,
    PROGRAM_MANAGER_INDEX,
    Pid,
)


def image(name="tool", image_kb=50, space_kb=100, code_kb=40, **kw):
    return ProgramImage(
        name=name, image_bytes=image_kb * 1024, space_bytes=space_kb * 1024,
        code_bytes=code_kb * 1024, body_factory=lambda ctx: iter(()), **kw,
    )


class TestProgramImage:
    def test_derived_fields(self):
        img = image()
        assert img.data_bytes == 10 * 1024
        assert img.image_pages == (50 * 1024) // PAGE_SIZE

    def test_validation(self):
        with pytest.raises(ValueError):
            image(image_kb=0)
        with pytest.raises(ValueError):
            image(image_kb=200, space_kb=100)
        with pytest.raises(ValueError):
            image(code_kb=60)  # code > image

    def test_device_bound_flag(self):
        assert image(device_bound=True).device_bound


class TestProgramRegistry:
    def test_register_and_lookup(self):
        registry = ProgramRegistry()
        img = registry.register(image())
        assert registry.lookup("tool") is img
        assert "tool" in registry
        assert len(registry) == 1
        assert registry.names() == ["tool"]

    def test_lookup_missing_raises(self):
        with pytest.raises(ProgramNotFoundError):
            ProgramRegistry().lookup("ghost")

    def test_master_pages_are_prewritten(self):
        registry = ProgramRegistry()
        registry.register(image())
        pages = registry.master_pages("tool")
        assert len(pages) == (50 * 1024) // PAGE_SIZE
        assert all(p.version >= 1 for p in pages)

    def test_reregister_replaces(self):
        registry = ProgramRegistry()
        registry.register(image())
        bigger = registry.register(image(image_kb=80, space_kb=120, code_kb=60))
        assert registry.lookup("tool") is bigger
        assert len(registry.master_pages("tool")) == (80 * 1024) // PAGE_SIZE


class TestProgramContext:
    def make(self):
        return ProgramContext(
            self_pid=Pid(0x30, 1),
            args=("a", "b"),
            stdout=Pid(0x20, 1),
            name_cache={"file-server": Pid(0x21, 1)},
            origin_pm=Pid(0x22, 1),
            home="ws0",
        )

    def test_wellknown_groups_track_own_lhid(self):
        ctx = self.make()
        assert ctx.kernel_server.logical_host_id == 0x30
        assert ctx.kernel_server.index == KERNEL_SERVER_INDEX
        assert ctx.program_manager.index == PROGRAM_MANAGER_INDEX

    def test_server_lookup(self):
        ctx = self.make()
        assert ctx.server("file-server") == Pid(0x21, 1)
        with pytest.raises(KeyError):
            ctx.server("database")

    def test_rebound_to_changes_self_only(self):
        ctx = self.make()
        child = ctx.rebound_to(Pid(0x31, 1))
        assert child.self_pid == Pid(0x31, 1)
        assert child.kernel_server.logical_host_id == 0x31
        assert child.stdout == ctx.stdout
        assert child.name_cache == ctx.name_cache
        assert child.name_cache is not ctx.name_cache  # copied, not shared

    def test_rebound_inherits_home_and_origin(self):
        ctx = self.make()
        child = ctx.rebound_to(Pid(0x31, 1))
        assert child.home == "ws0"
        assert child.origin_pm == ctx.origin_pm
