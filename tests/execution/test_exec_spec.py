"""The spec-based execution client and its deprecation shims.

The redesign's core promise: ``exec_program(ctx, ExecSpec(...))`` with
the default FirstResponder policy replays the pre-placement client's
trajectory byte for byte, and the old positional entry points survive
as shims that warn but behave identically.
"""

import warnings

from repro.execution import (
    ExecHandle,
    ExecSpec,
    exec_and_wait,
    exec_program,
    run_program,
    wait_for_program,
    wait_program,
)
from repro.execution.program import ProgramImage, ProgramRegistry
from repro.workloads import standard_registry

from tests.helpers import make_cluster


def run_session(body, n=3, seed=0, registry=None):
    """A fresh cluster with ``body`` as a session on ws0, run to the
    end; returns (cluster, trajectory fingerprint)."""
    cluster = make_cluster(
        n, full=True, seed=seed,
        registry=registry or standard_registry(scale=0.3))
    cluster.spawn_session(cluster.workstations[0], body)
    cluster.run(until_us=600_000_000)
    return cluster, (cluster.sim.now, cluster.sim.event_count,
                     cluster.net.packets_sent)


# ------------------------------------------------------------------ dataclass

def test_exec_spec_defaults():
    spec = ExecSpec("cc68")
    assert spec.where == "local"
    assert spec.args == ()
    assert spec.policy is None
    assert spec.retry_budget == 3
    assert spec.timeout_us is None


def test_exec_handle_tuple_unpacks_like_the_old_pair():
    handle = ExecHandle(pid="p", origin_pm="m", host="ws1")
    pid, origin_pm = handle
    assert (pid, origin_pm) == ("p", "m")


def test_wait_program_accepts_bare_pid_or_handle():
    cluster = make_cluster(2, full=True,
                           registry=standard_registry(scale=0.3))
    codes = []

    def body(ctx):
        handle = yield from exec_program(ctx, ExecSpec("cc68",
                                                       args=("x.c",)))
        codes.append((yield from wait_program(ctx, handle)))
        handle = yield from exec_program(ctx, ExecSpec("cc68",
                                                       args=("y.c",)))
        # A bare pid routes the rendezvous through the local group.
        codes.append((yield from wait_program(ctx, handle.pid)))

    cluster.spawn_session(cluster.workstations[0], body)
    cluster.run(until_us=600_000_000)
    assert codes == [0, 0]


# ----------------------------------------------------- old vs new trajectory

def legacy_session(outcomes):
    def body(ctx):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            pid, pm = yield from exec_program(
                ctx, "cc68", args=("x.c",), where="*")
            code = yield from wait_for_program(pm, pid)
            outcomes.append((str(pid), code))
            code = yield from exec_and_wait(ctx, "cc68", args=("y.c",))
            outcomes.append(code)
    return body


def spec_session(outcomes):
    def body(ctx):
        handle = yield from exec_program(
            ctx, ExecSpec("cc68", args=("x.c",), where="*"))
        code = yield from wait_program(ctx, handle)
        outcomes.append((str(handle.pid), code))
        code = yield from run_program(ctx, ExecSpec("cc68", args=("y.c",)))
        outcomes.append(code)
    return body


def test_legacy_and_spec_forms_take_identical_trajectories():
    """The deprecation shims and the spec path must be the same program:
    same simulated clock, event count, packet count and outcomes."""
    old_outcomes, new_outcomes = [], []
    _, old_fp = run_session(legacy_session(old_outcomes))
    _, new_fp = run_session(spec_session(new_outcomes))
    assert old_outcomes == new_outcomes
    assert old_fp == new_fp


def test_legacy_entry_points_warn():
    """Each shim emits one DeprecationWarning naming its replacement.
    The warnings fire inside generator bodies, so they are recorded
    around the whole run rather than at call sites."""
    cluster = make_cluster(2, full=True,
                           registry=standard_registry(scale=0.3))
    seen = []

    def body(ctx):
        handle = yield from exec_program(ctx, "cc68", args=("x.c",))
        code = yield from wait_for_program(handle.origin_pm, handle.pid)
        seen.append(code)
        seen.append((yield from exec_and_wait(ctx, "cc68", args=("y.c",))))

    cluster.spawn_session(cluster.workstations[0], body)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        cluster.run(until_us=600_000_000)
    assert seen == [0, 0]
    messages = [str(w.message) for w in caught
                if issubclass(w.category, DeprecationWarning)]
    assert any("ExecSpec" in m for m in messages)
    assert any("wait_program" in m for m in messages)
    assert any("run_program" in m for m in messages)


# ------------------------------------------------------------ env/io plumbing

def probe_registry(seen):
    def probe_body(ctx):
        seen.append((dict(ctx.env), ctx.stdout))
        return 0
        yield  # pragma: no cover - generator marker

    registry = ProgramRegistry()
    registry.register(ProgramImage(
        name="probe", image_bytes=16 * 1024, space_bytes=64 * 1024,
        code_bytes=8 * 1024, body_factory=probe_body,
    ))
    return registry


def test_spec_env_and_io_reach_the_child_context():
    seen = []
    done = []
    session_pid = []

    def body(ctx):
        session_pid.append(ctx.self_pid)
        code = yield from run_program(ctx, ExecSpec(
            "probe", env={"TERM": "v-term"}, io=ctx.self_pid))
        done.append(code)

    run_session(body, n=2, registry=probe_registry(seen))
    assert done == [0]
    assert seen and seen[0][0].get("TERM") == "v-term"
    assert seen[0][1] == session_pid[0]  # spec.io rebinds the child stdout
