"""The README's code blocks, executed.

Documentation that cannot rot: if the quickstart snippets stop working,
this file fails.
"""

import pathlib
import re

import pytest

README = (pathlib.Path(__file__).parent.parent / "README.md").read_text()


def extract_python_blocks(text):
    return re.findall(r"```python\n(.*?)```", text, flags=re.S)


def test_readme_has_python_snippets():
    assert len(extract_python_blocks(README)) >= 2


def test_quickstart_snippet_runs():
    blocks = extract_python_blocks(README)
    snippet = next(b for b in blocks if "run_script" in b)
    namespace = {}
    exec(compile(snippet, "README.md", "exec"), namespace)  # noqa: S102
    shell = namespace["shell"]
    # The script ran: the compile finished and the migration reported.
    assert any("cc68: exit 0" in line for line in shell.output), shell.output
    assert any("migrateprog" in line or "started as" in line
               for line in shell.output)


def test_session_snippet_compiles_and_runs():
    blocks = extract_python_blocks(README)
    snippet = next(b for b in blocks if "def my_session" in b)
    namespace = {}
    exec(compile(snippet, "README.md", "exec"), namespace)  # noqa: S102
    my_session = namespace["my_session"]

    # Wire it into a real cluster and run it.
    from repro.cluster import build_cluster
    from repro.workloads import standard_registry

    cluster = build_cluster(n_workstations=3,
                            registry=standard_registry(scale=0.1))
    done = []

    def wrapper(ctx):
        yield from my_session(ctx)
        done.append(True)

    cluster.spawn_session(cluster.workstations[0], wrapper)
    cluster.run(until_us=120_000_000)
    assert done == [True]
