"""Global test hygiene.

The repo's switchable machinery is process-global state: the
FASTPATH/COPY_PLANE switch blocks, the planted mutations of the
differential harness, and the armed-perturber slot consumed by the next
``Simulator``.  A test that flips any of these and dies mid-way must
not poison its neighbours, so one autouse fixture snapshots and
restores all of it around every test -- which is also what lets
``tests/helpers.py``'s ``make_cluster(toggles=...)`` set knobs without
per-test try/finally blocks.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _toggle_hygiene():
    from repro._fastpath import COPY_PLANE, FASTPATH, PLACEMENT
    from repro.sim.engine import arm_perturber
    from repro.verify.mutation import clear_all

    fastpath = FASTPATH.snapshot()
    copy_plane = COPY_PLANE.snapshot()
    placement = PLACEMENT.snapshot()
    yield
    for name, value in fastpath.items():
        setattr(FASTPATH, name, value)
    for name, value in copy_plane.items():
        setattr(COPY_PLANE, name, value)
    for name, value in placement.items():
        setattr(PLACEMENT, name, value)
    clear_all()
    arm_perturber(None)
