"""Unit tests for address spaces, pages and dirty-bit machinery."""

import pytest

from repro.config import PAGE_SIZE
from repro.errors import KernelError
from repro.kernel import AddressSpace


def test_page_count_rounds_up():
    space = AddressSpace(PAGE_SIZE * 3 + 1)
    assert space.n_pages == 4


def test_size_must_be_positive():
    with pytest.raises(KernelError):
        AddressSpace(0)


def test_code_plus_data_must_fit():
    with pytest.raises(KernelError):
        AddressSpace(PAGE_SIZE, code_bytes=PAGE_SIZE, data_bytes=1)


def test_touch_write_sets_dirty_and_bumps_version():
    space = AddressSpace(PAGE_SIZE * 4)
    space.touch(0, 10)
    page = space.pages[0]
    assert page.dirty
    assert page.version == 1
    assert not space.pages[1].dirty


def test_touch_read_does_not_dirty():
    space = AddressSpace(PAGE_SIZE * 2)
    space.touch(0, 10, write=False)
    assert not space.pages[0].dirty
    assert space.pages[0].referenced


def test_touch_spanning_pages_dirties_all():
    space = AddressSpace(PAGE_SIZE * 4)
    space.touch(PAGE_SIZE - 1, PAGE_SIZE + 2)
    assert [p.dirty for p in space.pages] == [True, True, True, False]


def test_touch_out_of_range_rejected():
    space = AddressSpace(PAGE_SIZE)
    with pytest.raises(KernelError):
        space.touch(0, PAGE_SIZE + 1)
    with pytest.raises(KernelError):
        space.touch(-1, 2)


def test_touch_zero_bytes_is_noop():
    space = AddressSpace(PAGE_SIZE)
    space.touch(0, 0)
    assert not space.pages[0].dirty


def test_touch_pages_by_index():
    space = AddressSpace(PAGE_SIZE * 5)
    space.touch_pages([1, 3])
    assert [p.dirty for p in space.pages] == [False, True, False, True, False]


def test_collect_dirty_clears_bits():
    space = AddressSpace(PAGE_SIZE * 3)
    space.touch_pages([0, 2])
    collected = space.collect_dirty()
    assert [p.index for p in collected] == [0, 2]
    assert space.dirty_pages() == []
    # Versions survive collection.
    assert space.pages[0].version == 1


def test_dirty_bytes():
    space = AddressSpace(PAGE_SIZE * 8)
    space.touch_pages([0, 1, 2])
    assert space.dirty_bytes() == 3 * PAGE_SIZE


def test_load_image_writes_every_page():
    space = AddressSpace(PAGE_SIZE * 4)
    space.load_image()
    assert all(p.dirty and p.version == 1 for p in space.pages)


def test_apply_copy_transfers_versions():
    src = AddressSpace(PAGE_SIZE * 4)
    dst = AddressSpace(PAGE_SIZE * 4)
    src.touch_pages([0, 1, 2, 3])
    src.touch_pages([2])
    dst.apply_copy(src.pages)
    assert dst.identical_to(src)


def test_apply_copy_out_of_range_page_rejected():
    src = AddressSpace(PAGE_SIZE * 4)
    dst = AddressSpace(PAGE_SIZE * 2)
    with pytest.raises(KernelError):
        dst.apply_copy(src.pages)


def test_identical_to_detects_divergence():
    a = AddressSpace(PAGE_SIZE * 2)
    b = AddressSpace(PAGE_SIZE * 2)
    assert a.identical_to(b)
    a.touch(0, 1)
    assert not a.identical_to(b)


def test_code_pages_geometry():
    space = AddressSpace(PAGE_SIZE * 10, code_bytes=PAGE_SIZE * 3 + 5)
    assert space.code_pages == 4


def test_page_of():
    space = AddressSpace(PAGE_SIZE * 2)
    assert space.page_of(0).index == 0
    assert space.page_of(PAGE_SIZE).index == 1
    with pytest.raises(KernelError):
        space.page_of(PAGE_SIZE * 2)


def test_clear_referenced():
    space = AddressSpace(PAGE_SIZE * 2)
    space.touch(0, 1, write=False)
    space.clear_referenced()
    assert not any(p.referenced for p in space.pages)


def test_version_vector_equality_semantics():
    a = AddressSpace(PAGE_SIZE * 3)
    a.touch_pages([1])
    assert a.version_vector() == {0: 0, 1: 1, 2: 0}


class TestPageRuns:
    def test_collect_dirty_runs_coalesces_and_clears(self):
        from repro.kernel.address_space import PageRuns

        space = AddressSpace(PAGE_SIZE * 16)
        space.touch_pages([2, 3, 4, 9, 12, 13])
        runs = space.collect_dirty_runs()
        assert isinstance(runs, PageRuns)
        assert runs.runs == ((2, 3), (9, 1), (12, 2))
        assert len(runs) == 6
        assert space.collect_dirty() == []  # scan cleared the bits

    def test_iteration_yields_pages_ascending(self):
        space = AddressSpace(PAGE_SIZE * 8)
        space.touch_pages([5, 1, 6, 2])
        runs = space.collect_dirty_runs()
        assert [p.index for p in runs] == [1, 2, 5, 6]
        assert all(p.space is space for p in runs)

    def test_indexing_and_slicing(self):
        space = AddressSpace(PAGE_SIZE * 8)
        space.touch_pages([0, 1, 4, 5])
        runs = space.collect_dirty_runs()
        assert runs[2].index == 4
        assert [p.index for p in runs[1:3]] == [1, 4]
        assert runs.index_list() == [0, 1, 4, 5]

    def test_has_index_membership(self):
        space = AddressSpace(PAGE_SIZE * 8)
        space.touch_pages([3, 4])
        runs = space.collect_dirty_runs()
        assert runs.has_index(3) and runs.has_index(4)
        assert not runs.has_index(2) and not runs.has_index(5)

    def test_full_runs_covers_whole_space(self):
        space = AddressSpace(PAGE_SIZE * 5)
        runs = space.full_runs()
        assert runs.runs == ((0, 5),)
        assert len(runs) == 5

    def test_empty_runs_are_falsy(self):
        space = AddressSpace(PAGE_SIZE * 4)
        runs = space.collect_dirty_runs()
        assert runs.runs == ()
        assert len(runs) == 0
        assert not runs

    def test_apply_copy_accepts_runs(self):
        src = AddressSpace(PAGE_SIZE * 6)
        dst = AddressSpace(PAGE_SIZE * 6)
        src.touch_pages([1, 2, 4])
        src.touch_pages([1])  # version 2 on page 1
        runs = src.collect_dirty_runs()
        dst.apply_copy(runs)
        assert dst.version_vector() == src.version_vector()

    def test_apply_copy_runs_out_of_range_rejected(self):
        src = AddressSpace(PAGE_SIZE * 6)
        dst = AddressSpace(PAGE_SIZE * 2)
        src.touch_pages([4])
        runs = src.collect_dirty_runs()
        with pytest.raises(KernelError):
            dst.apply_copy(runs)
