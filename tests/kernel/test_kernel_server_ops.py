"""Tests for kernel-server operations exercised over IPC.

The kernel server is only reachable through messages (paper §6: a
process "cannot directly examine kernel data structures but must send a
message to the kernel"), so these tests drive every operation the way a
real program would.
"""

import pytest

from repro.config import PAGE_SIZE
from repro.ipc import Message
from repro.kernel import Compute, Delay, Priority, Send
from repro.kernel.ids import Pid, local_kernel_server_group

from tests.helpers import BareCluster


def ks_call(cluster, station, message, results):
    """Run a throwaway client that sends one KS request."""
    lh = station.kernel.create_logical_host()
    station.kernel.allocate_space(lh, 4096)

    def client():
        reply = yield Send(local_kernel_server_group(lh.lhid), message)
        results.append(reply)

    station.kernel.create_process(lh, client(), name="ks-client")


class TestQueries:
    def test_get_time_tracks_clock(self):
        cluster = BareCluster(n=1)
        results = []
        cluster.sim.run(until_us=5_000)
        ks_call(cluster, cluster.stations[0], Message("get-time"), results)
        cluster.run()
        assert results[0]["now_us"] >= 5_000

    def test_query_utilization(self):
        cluster = BareCluster(n=1)
        ws = cluster.stations[0]

        def burner():
            yield Compute(2_000_000)

        cluster.spawn_program(ws, burner(), name="burner")
        cluster.run(until_us=1_000_000)
        results = []
        ks_call(cluster, ws, Message("query-utilization"), results)
        cluster.run(until_us=2_000_000)
        assert results and 0.5 < results[0]["utilization"] <= 1.0
        assert results[0]["busy_us"] > 0

    def test_query_load_reports_memory(self):
        cluster = BareCluster(n=1)
        results = []
        ks_call(cluster, cluster.stations[0], Message("query-load"), results)
        cluster.run()
        assert results[0].kind == "load"
        assert 0 < results[0]["memory_free"] <= 2 * 1024 * 1024


class TestProcessOps:
    def test_set_priority(self):
        cluster = BareCluster(n=1)
        ws = cluster.stations[0]

        def victim():
            yield Delay(10**9)

        _, pcb = cluster.spawn_program(ws, victim(), name="victim")
        results = []
        ks_call(cluster, ws,
                Message("set-priority", pid=pcb.pid,
                        priority=int(Priority.BACKGROUND)),
                results)
        cluster.run(until_us=1_000_000)
        assert results[0].kind == "ok"
        assert pcb.priority == Priority.BACKGROUND

    def test_ops_on_missing_pid_error(self):
        cluster = BareCluster(n=1)
        ws = cluster.stations[0]
        ghost = Pid(0x10, 0x77)
        for op in ("destroy-process", "set-priority", "suspend", "resume",
                   "query-process"):
            results = []
            msg = Message(op, pid=ghost, priority=4)
            ks_call(cluster, ws, msg, results)
            cluster.run(until_us=cluster.sim.now + 2_000_000)
            assert results and results[0].kind == "ks-error", op


class TestFreezeOps:
    def test_remote_freeze_and_unfreeze(self):
        """A logical host can be frozen from another workstation through
        its kernel server."""
        cluster = BareCluster(n=2)
        a, b = cluster.stations
        progress = []

        def looper():
            while True:
                yield Compute(10_000)
                progress.append(cluster.sim.now)

        lh, pcb = cluster.spawn_program(b, looper(), name="looper")
        results = []

        def controller():
            reply = yield Send(local_kernel_server_group(lh.lhid),
                               Message("freeze", lhid=lh.lhid))
            results.append(reply.kind)
            yield Delay(1_000_000)
            count_during = len(progress)
            reply = yield Send(local_kernel_server_group(lh.lhid),
                               Message("unfreeze", lhid=lh.lhid))
            results.append(reply.kind)
            results.append(count_during)

        ctrl_lh = a.kernel.create_logical_host()
        a.kernel.allocate_space(ctrl_lh, 4096)
        a.kernel.create_process(ctrl_lh, controller(), name="ctrl")
        cluster.run(until_us=5_000_000)
        assert results[0] == "ok" and results[1] == "ok"
        frozen_count = results[2]
        assert len(progress) > frozen_count  # resumed after unfreeze

    def test_freeze_unknown_lh_errors(self):
        cluster = BareCluster(n=1)
        results = []
        ks_call(cluster, cluster.stations[0],
                Message("freeze", lhid=0x7777), results)
        cluster.run(until_us=2_000_000)
        assert results[0].kind == "ks-error"


class TestShellOps:
    def test_create_shell_builds_stubs(self):
        cluster = BareCluster(n=2)
        a, b = cluster.stations
        results = []

        def requester():
            reply = yield Send(
                local_kernel_server_group(b.system_lh.lhid),
                Message("create-shell",
                        spaces=[(PAGE_SIZE * 4, 0, 0, "s0")],
                        processes=[(1, 0, "stub")]),
            )
            results.append(reply)

        lh = a.kernel.create_logical_host()
        a.kernel.allocate_space(lh, 4096)
        a.kernel.create_process(lh, requester(), name="req")
        cluster.run(until_us=5_000_000)
        assert results[0].kind == "shell-created"
        shell = b.kernel.logical_hosts[results[0]["temp_lhid"]]
        assert shell.is_shell
        assert shell.find_process(1) is not None

    def test_create_shell_out_of_memory(self):
        cluster = BareCluster(n=2)
        a, b = cluster.stations
        results = []

        def requester():
            reply = yield Send(
                local_kernel_server_group(b.system_lh.lhid),
                Message("create-shell",
                        spaces=[(64 * 1024 * 1024, 0, 0, "huge")],
                        processes=[(1, 0, "stub")]),
            )
            results.append(reply)

        lh = a.kernel.create_logical_host()
        a.kernel.allocate_space(lh, 4096)
        a.kernel.create_process(lh, requester(), name="req")
        cluster.run(until_us=5_000_000)
        assert results[0].kind == "ks-error"
        # No half-built shell left behind.
        assert all(not lh2.is_shell for lh2 in b.kernel.logical_hosts.values())

    def test_install_state_without_shell_errors(self):
        cluster = BareCluster(n=2)
        a, b = cluster.stations
        results = []

        def requester():
            reply = yield Send(
                local_kernel_server_group(b.system_lh.lhid),
                Message("install-state", temp_lhid=0x5555,
                        bundle={"processes": [], "groups": {},
                                "transport": {"clients": [], "servers": []},
                                "lhid": 0x5555}),
            )
            results.append(reply)

        lh = a.kernel.create_logical_host()
        a.kernel.allocate_space(lh, 4096)
        a.kernel.create_process(lh, requester(), name="req")
        cluster.run(until_us=5_000_000)
        assert results[0].kind == "ks-error"

    def test_destroy_lh_op(self):
        cluster = BareCluster(n=2)
        a, b = cluster.stations
        victim_lh = b.kernel.create_logical_host()
        b.kernel.allocate_space(victim_lh, 4096)
        results = []

        def requester():
            reply = yield Send(
                local_kernel_server_group(b.system_lh.lhid),
                Message("destroy-lh", lhid=victim_lh.lhid),
            )
            results.append(reply.kind)

        lh = a.kernel.create_logical_host()
        a.kernel.allocate_space(lh, 4096)
        a.kernel.create_process(lh, requester(), name="req")
        cluster.run(until_us=5_000_000)
        assert results == ["ok"]
        assert not b.kernel.hosts_lhid(victim_lh.lhid)
