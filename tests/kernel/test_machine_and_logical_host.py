"""Unit tests for workstation assembly and logical hosts."""

import pytest

from repro.config import PAGE_SIZE
from repro.errors import KernelError, NoSuchProcessError
from repro.kernel import AddressSpace, LogicalHost, Pcb
from repro.kernel.ids import Pid

from tests.helpers import BareCluster


class TestWorkstationBoot:
    def test_kernel_server_installed_at_boot(self):
        cluster = BareCluster(n=1)
        ws = cluster.stations[0]
        assert ws.kernel.kernel_server_pcb is not None
        assert ws.kernel.kernel_server_pcb.alive
        assert ws.kernel_server_pid == ws.kernel.kernel_server_pcb.pid

    def test_program_manager_absent_on_bare_station(self):
        cluster = BareCluster(n=1)
        assert cluster.stations[0].program_manager_pid is None

    def test_system_lh_hosted(self):
        cluster = BareCluster(n=1)
        ws = cluster.stations[0]
        assert ws.kernel.hosts_lhid(ws.system_lh.lhid)

    def test_distinct_names_and_addresses(self):
        cluster = BareCluster(n=3)
        names = {ws.name for ws in cluster.stations}
        addrs = {ws.address for ws in cluster.stations}
        assert len(names) == 3 and len(addrs) == 3

    def test_crash_silences_host(self):
        cluster = BareCluster(n=2)
        ws = cluster.stations[1]
        ws.crash()
        assert not ws.kernel.alive
        assert ws.kernel.logical_hosts == {}
        assert cluster.net.nic_at(ws.address) is None

    def test_reset_world_restarts_lhid_allocation(self):
        a = BareCluster(n=1)
        first = a.stations[0].system_lh.lhid
        b = BareCluster(n=1)
        assert b.stations[0].system_lh.lhid == first


def _parked():
    from repro.kernel.process import Delay

    yield Delay(10**9)


class TestLogicalHost:
    def make(self):
        lh = LogicalHost(0x50)
        space = AddressSpace(PAGE_SIZE * 4)
        lh.add_space(space)
        return lh, space

    def test_add_remove_space(self):
        lh, space = self.make()
        assert lh.total_bytes() == PAGE_SIZE * 4
        lh.remove_space(space)
        assert lh.spaces == []
        with pytest.raises(KernelError):
            lh.remove_space(space)

    def test_allocate_index_skips_group_bit(self):
        lh, _ = self.make()
        for _ in range(100):
            index = lh.allocate_index()
            assert not index & 0x8000

    def test_add_process_rejects_duplicates(self):
        lh, space = self.make()
        pcb = Pcb(Pid(0x50, 1), lh, space, _parked())
        lh.processes[1] = pcb
        dup = Pcb(Pid(0x50, 1), lh, space, _parked())
        with pytest.raises(KernelError):
            lh.add_process(dup)

    def test_remove_process_validates_membership(self):
        lh, space = self.make()
        stranger = Pcb(Pid(0x50, 7), lh, space, _parked())
        with pytest.raises(NoSuchProcessError):
            lh.remove_process(stranger)

    def test_live_processes_in_index_order(self):
        lh, space = self.make()
        for index in (5, 2, 9):
            pcb = Pcb(Pid(0x50, index), lh, space, _parked())
            lh.processes[index] = pcb
        assert [p.pid.local_index for p in lh.live_processes()] == [2, 5, 9]

    def test_defer_requires_frozen(self):
        lh, _ = self.make()
        with pytest.raises(KernelError):
            lh.defer_request(("sender", "msg"))
        lh.frozen = True
        lh.defer_request(("sender", "msg"))
        assert lh.drain_deferred() == [("sender", "msg")]
        assert lh.deferred_requests == []

    def test_group_id_cannot_be_a_process(self):
        lh, space = self.make()
        with pytest.raises(KernelError):
            Pcb(Pid(0x50, 0x8001), lh, space, _parked())


class TestKernelLookups:
    def test_require_pcb_returns_or_raises(self):
        from repro.kernel.ids import Pid

        cluster = BareCluster(n=1)
        ws = cluster.stations[0]
        ks = ws.kernel.kernel_server_pcb
        assert ws.kernel.require_pcb(ks.pid) is ks
        with pytest.raises(NoSuchProcessError):
            ws.kernel.require_pcb(Pid(0x77, 0x77))


def test_process_body_must_be_generator():
    from repro.config import PAGE_SIZE
    from repro.kernel import AddressSpace, LogicalHost, Pcb
    from repro.kernel.ids import Pid

    lh = LogicalHost(0x60)
    space = AddressSpace(PAGE_SIZE)
    with pytest.raises(KernelError):
        Pcb(Pid(0x60, 1), lh, space, lambda: None)
    with pytest.raises(KernelError):
        Pcb(Pid(0x60, 1), lh, space, "not a generator")
