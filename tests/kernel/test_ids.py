"""Unit tests for pids and group identifiers."""

import pytest

from repro.kernel.ids import (
    GROUP_BIT,
    KERNEL_SERVER_INDEX,
    PROGRAM_MANAGER_GROUP,
    PROGRAM_MANAGER_INDEX,
    Pid,
    is_wellknown_local_group,
    local_kernel_server_group,
    local_program_manager_group,
)


def test_pid_packs_into_32_bits():
    pid = Pid(0x1234, 0x0042)
    assert pid.as_int() == 0x12340042
    assert Pid.from_int(0x12340042) == pid


def test_pid_fields_validated():
    with pytest.raises(ValueError):
        Pid(0x10000, 0)
    with pytest.raises(ValueError):
        Pid(0, -1)


def test_pid_equality_and_hash():
    assert Pid(1, 2) == Pid(1, 2)
    assert hash(Pid(1, 2)) == hash(Pid(1, 2))
    assert Pid(1, 2) != Pid(1, 3)


def test_group_bit_marks_group():
    assert not Pid(5, 7).is_group
    assert Pid(5, 7 | GROUP_BIT).is_group


def test_index_masks_group_bit():
    assert Pid(5, 7 | GROUP_BIT).index == 7


def test_local_kernel_server_group_is_group_with_lhid():
    gid = local_kernel_server_group(0x77)
    assert gid.is_group
    assert gid.logical_host_id == 0x77
    assert gid.index == KERNEL_SERVER_INDEX
    assert is_wellknown_local_group(gid)


def test_local_program_manager_group():
    gid = local_program_manager_group(0x12)
    assert gid.index == PROGRAM_MANAGER_INDEX
    assert is_wellknown_local_group(gid)


def test_program_manager_group_is_global():
    assert PROGRAM_MANAGER_GROUP.is_group
    assert PROGRAM_MANAGER_GROUP.is_global_group


def test_plain_pid_is_not_wellknown_group():
    assert not is_wellknown_local_group(Pid(5, 7))
    assert not is_wellknown_local_group(Pid(5, 7 | GROUP_BIT))


def test_group_id_same_format_as_pid():
    # Paper footnote 2: a process-group-id is identical in format.
    gid = local_kernel_server_group(0x42)
    roundtrip = Pid.from_int(gid.as_int())
    assert roundtrip == gid
