"""Suspension semantics: an overlay, not a state.

The subtle case: a process suspended while *awaiting a reply* must not
run when that reply arrives -- the wakeup is held and delivered at
resume, with the correct value.
"""

import pytest

from repro.ipc import Message
from repro.kernel import Compute, Delay, Receive, Reply, Send

from tests.helpers import BareCluster


def test_suspend_running_process_stops_it():
    cluster = BareCluster(n=1)
    ws = cluster.stations[0]
    log = []

    def body():
        while True:
            yield Compute(10_000)
            log.append(cluster.sim.now)

    _, pcb = cluster.spawn_program(ws, body(), name="looper")
    cluster.run(until_us=50_000)
    ws.kernel.suspend_process(pcb)
    at_suspend = len(log)
    cluster.run(until_us=500_000)
    assert len(log) == at_suspend
    ws.kernel.resume_process(pcb)
    cluster.run(until_us=700_000)
    assert len(log) > at_suspend


def test_reply_arriving_while_suspended_is_held_not_lost():
    """The motivating bug: suspend a process mid-RPC; the reply arrives;
    the process must stay stopped, then receive that exact reply when
    resumed."""
    cluster = BareCluster(n=1)
    ws = cluster.stations[0]

    def slow_server():
        sender, msg = yield Receive()
        yield Compute(500_000)
        yield Reply(sender, msg.replying(answer=99))

    lh, server = cluster.spawn_program(ws, slow_server(), name="server")
    got = []

    def client():
        reply = yield Send(server.pid, Message("ask"))
        got.append((cluster.sim.now, reply["answer"]))

    _, client_pcb = cluster.spawn_program(ws, client(), lh=lh, name="client")
    cluster.run(until_us=100_000)  # client is awaiting-reply
    ws.kernel.suspend_process(client_pcb)
    cluster.run(until_us=2_000_000)  # reply long since arrived
    assert got == []                 # ...but the client did not run
    assert client_pcb.wake_pending
    ws.kernel.resume_process(client_pcb)
    cluster.run(until_us=3_000_000)
    assert len(got) == 1
    resumed_at, answer = got[0]
    assert answer == 99              # the held reply, intact
    assert resumed_at >= 2_000_000


def test_suspend_while_delaying_holds_the_wakeup():
    cluster = BareCluster(n=1)
    ws = cluster.stations[0]
    woke = []

    def sleeper():
        yield Delay(200_000)
        woke.append(cluster.sim.now)

    _, pcb = cluster.spawn_program(ws, sleeper(), name="sleeper")
    cluster.run(until_us=50_000)
    ws.kernel.suspend_process(pcb)
    cluster.run(until_us=1_000_000)  # deadline passed while suspended
    assert woke == []
    ws.kernel.resume_process(pcb)
    cluster.run(until_us=2_000_000)
    assert len(woke) == 1 and woke[0] >= 1_000_000


def test_suspend_and_resume_are_idempotent():
    cluster = BareCluster(n=1)
    ws = cluster.stations[0]

    def body():
        yield Compute(1_000_000)

    _, pcb = cluster.spawn_program(ws, body(), name="p")
    cluster.run(until_us=10_000)
    ws.kernel.suspend_process(pcb)
    ws.kernel.suspend_process(pcb)  # second call: no-op
    cluster.run(until_us=100_000)
    ws.kernel.resume_process(pcb)
    ws.kernel.resume_process(pcb)   # second call: no-op
    cluster.run()
    assert not pcb.alive  # ran to completion exactly once


def test_state_label_reports_suspension():
    cluster = BareCluster(n=1)
    ws = cluster.stations[0]

    def body():
        yield Delay(10_000_000)

    _, pcb = cluster.spawn_program(ws, body(), name="p")
    cluster.run(until_us=10_000)
    assert pcb.state_label() == "delaying"
    ws.kernel.suspend_process(pcb)
    assert pcb.state_label() == "suspended"
    ws.kernel.resume_process(pcb)
    assert pcb.state_label() == "delaying"


def test_incoming_request_to_suspended_server_queues():
    cluster = BareCluster(n=1)
    ws = cluster.stations[0]

    def server():
        while True:
            sender, msg = yield Receive()
            yield Reply(sender, msg.replying(ok=True))

    lh, server_pcb = cluster.spawn_program(ws, server(), name="server")
    cluster.run(until_us=10_000)  # server blocked in Receive
    ws.kernel.suspend_process(server_pcb)
    got = []

    def client():
        reply = yield Send(server_pcb.pid, Message("ping"))
        got.append(reply["ok"])

    cluster.spawn_program(ws, client(), lh=lh, name="client")
    cluster.run(until_us=2_000_000)
    assert got == []  # server suspended: request waits
    ws.kernel.resume_process(server_pcb)
    cluster.run(until_us=4_000_000)
    assert got == [True]


def test_set_priority_requeues_immediately():
    """Demoting a running CPU hog lets a waiting peer in at once."""
    from repro.kernel import Priority

    cluster = BareCluster(n=1)
    ws = cluster.stations[0]
    finished = {}

    def body(tag, us):
        yield Compute(us)
        finished[tag] = cluster.sim.now

    _, hog = cluster.spawn_program(ws, body("hog", 1_000_000),
                                   priority=Priority.LOCAL, name="hog")
    cluster.run(until_us=100_000)
    _, peer = cluster.spawn_program(ws, body("peer", 200_000),
                                    priority=Priority.REMOTE, name="peer")
    # Demote the hog below the peer: the peer should now run first.
    ws.kernel.set_priority(hog, Priority.BACKGROUND)
    cluster.run()
    assert finished["peer"] < finished["hog"]


def test_suspension_preserves_compute_progress():
    """A job suspended mid-compute resumes where it was, not from the
    start of its current chunk."""
    cluster = BareCluster(n=1)
    ws = cluster.stations[0]
    done = {}

    def body():
        yield Compute(1_000_000)
        done["at"] = cluster.sim.now

    _, pcb = cluster.spawn_program(ws, body(), name="worker")
    cluster.run(until_us=600_000)  # 600 ms of the 1000 ms done
    ws.kernel.suspend_process(pcb)
    cluster.run(until_us=5_000_000)
    ws.kernel.resume_process(pcb)
    cluster.run()
    # Finishes ~400 ms after resume, not ~1000 ms.
    assert done["at"] < 5_600_000
