"""Unit tests for the per-workstation CPU scheduler."""

import pytest

from repro.kernel import Compute, Delay, Exit, Priority, Touch, TouchPages
from repro.kernel.process import ProcessState

from tests.helpers import BareCluster


def make_station(seed=0):
    cluster = BareCluster(n=1, seed=seed)
    return cluster, cluster.stations[0]


class TestBasicExecution:
    def test_compute_advances_and_process_exits(self):
        cluster, ws = make_station()
        log = []

        def body():
            yield Compute(5_000)
            log.append(cluster.sim.now)

        _, pcb = cluster.spawn_program(ws, body())
        cluster.run()
        assert pcb.state is ProcessState.DEAD
        assert pcb.exit_code == 0
        assert log and log[0] >= 5_000

    def test_cpu_time_accounted(self):
        cluster, ws = make_station()

        def body():
            yield Compute(10_000)
            yield Compute(2_000)

        _, pcb = cluster.spawn_program(ws, body())
        cluster.run()
        assert pcb.cpu_used_us >= 12_000

    def test_touch_dirties_own_space(self):
        cluster, ws = make_station()

        def body():
            yield Touch(0, 100)
            yield TouchPages([3])
            yield Compute(100)

        lh, pcb = cluster.spawn_program(ws, body())
        space = pcb.space
        cluster.run()
        assert space.pages[0].version == 1
        assert space.pages[3].version == 1

    def test_exit_instruction_sets_code(self):
        cluster, ws = make_station()

        def body():
            yield Exit(7)

        _, pcb = cluster.spawn_program(ws, body())
        cluster.run()
        assert pcb.exit_code == 7

    def test_return_value_becomes_exit_code(self):
        cluster, ws = make_station()

        def body():
            yield Compute(10)
            return 3

        _, pcb = cluster.spawn_program(ws, body())
        cluster.run()
        assert pcb.exit_code == 3

    def test_done_event_triggers(self):
        cluster, ws = make_station()

        def body():
            yield Compute(10)

        _, pcb = cluster.spawn_program(ws, body())
        cluster.run()
        assert pcb.done_event.triggered

    def test_delay_does_not_use_cpu(self):
        cluster, ws = make_station()

        def sleeper():
            yield Delay(1_000_000)

        def worker(log):
            yield Compute(500_000)
            log.append(cluster.sim.now)

        log = []
        cluster.spawn_program(ws, sleeper(), name="sleeper")
        cluster.spawn_program(ws, worker(log), name="worker")
        cluster.run()
        # Worker's 500 ms of compute is not delayed by the sleeper.
        assert log and log[0] < 600_000

    def test_crashing_body_faults_process(self):
        cluster, ws = make_station()
        cluster.sim.strict = False

        def body():
            yield Compute(10)
            raise ValueError("bug in program")

        _, pcb = cluster.spawn_program(ws, body())
        cluster.run()
        assert pcb.state is ProcessState.DEAD
        assert pcb in ws.kernel.faulted


class TestPriorities:
    def test_higher_priority_runs_first(self):
        cluster, ws = make_station()
        order = []

        def body(tag):
            yield Compute(10_000)
            order.append(tag)

        cluster.spawn_program(ws, body("low"), priority=Priority.REMOTE, name="low")
        cluster.spawn_program(ws, body("high"), priority=Priority.LOCAL, name="high")
        cluster.run()
        assert order == ["high", "low"]

    def test_preemption_of_lower_priority(self):
        cluster, ws = make_station()
        finished = {}

        def long_low():
            yield Compute(1_000_000)
            finished["low"] = cluster.sim.now

        def short_high():
            yield Compute(10_000)
            finished["high"] = cluster.sim.now

        cluster.spawn_program(ws, long_low(), priority=Priority.REMOTE, name="low")
        cluster.run(until_us=100_000)  # low is mid-compute
        cluster.spawn_program(ws, short_high(), priority=Priority.LOCAL, name="high")
        cluster.run()
        # High preempts immediately and finishes around 110 ms, not after
        # the low job's full second.
        assert finished["high"] < 200_000
        assert finished["low"] > finished["high"]

    def test_preempted_compute_is_not_lost(self):
        cluster, ws = make_station()
        finished = {}

        def low():
            yield Compute(300_000)
            finished["low"] = cluster.sim.now

        def high():
            yield Compute(100_000)
            finished["high"] = cluster.sim.now

        cluster.spawn_program(ws, low(), priority=Priority.REMOTE, name="low")
        cluster.run(until_us=100_000)
        cluster.spawn_program(ws, high(), priority=Priority.LOCAL, name="high")
        cluster.run()
        # Low finishes ~100k (already done) + 100k (high) + 200k remaining.
        assert 390_000 < finished["low"] < 450_000

    def test_equal_priority_time_slicing(self):
        cluster, ws = make_station()
        finished = {}

        def body(tag):
            yield Compute(100_000)
            finished[tag] = cluster.sim.now

        cluster.spawn_program(ws, body("a"), name="a")
        cluster.spawn_program(ws, body("b"), name="b")
        cluster.run()
        # With 10 ms slices the two finish within one slice of each other,
        # not serially (which would separate them by 100 ms).
        assert abs(finished["a"] - finished["b"]) <= 15_000

    def test_owner_editor_unaffected_by_background_job(self):
        """Paper §2: a text-editing user need not notice background jobs."""
        cluster, ws = make_station()
        keystroke_latencies = []

        def editor():
            for _ in range(20):
                yield Delay(50_000)  # think time
                start = cluster.sim.now
                yield Compute(2_000)  # handle a keystroke
                keystroke_latencies.append(cluster.sim.now - start)

        def background():
            for _ in range(100):
                yield Compute(50_000)

        cluster.spawn_program(ws, background(), priority=Priority.REMOTE, name="bg")
        cluster.spawn_program(ws, editor(), priority=Priority.LOCAL, name="editor")
        cluster.run()
        # Every keystroke is serviced promptly despite the busy machine.
        assert max(keystroke_latencies) < 5_000


class TestSuspension:
    def test_suspend_and_resume(self):
        cluster, ws = make_station()
        log = []

        def body():
            yield Compute(10_000)
            log.append("first")
            yield Compute(10_000)
            log.append("second")

        _, pcb = cluster.spawn_program(ws, body())
        cluster.run(until_us=12_000)
        ws.kernel.suspend_process(pcb)
        cluster.run(until_us=1_000_000)
        assert log == ["first"]
        ws.kernel.resume_process(pcb)
        cluster.run()
        assert log == ["first", "second"]

    def test_destroy_running_process(self):
        cluster, ws = make_station()

        def body():
            yield Compute(1_000_000)

        _, pcb = cluster.spawn_program(ws, body())
        cluster.run(until_us=1_000)
        ws.kernel.destroy_process(pcb, exit_code=-9)
        cluster.run()
        assert pcb.state is ProcessState.DEAD
        assert pcb.exit_code == -9


class TestLoadReporting:
    def test_ready_count_counts_program_processes(self):
        cluster, ws = make_station()

        def body():
            yield Compute(1_000_000)

        cluster.spawn_program(ws, body(), name="p1")
        cluster.spawn_program(ws, body(), name="p2")
        cluster.run(until_us=5_000)
        summary = ws.kernel.load_summary()
        assert summary["programs"] == 2

    def test_memory_accounting(self):
        cluster, ws = make_station()
        free_before = ws.kernel.memory_free

        def body():
            yield Compute(1_000)

        lh, _ = cluster.spawn_program(ws, body(), space_bytes=128 * 1024)
        assert ws.kernel.memory_free == free_before - 128 * 1024
        ws.kernel.destroy_logical_host(lh)
        assert ws.kernel.memory_free == free_before

    def test_out_of_memory_rejected(self):
        from repro.errors import OutOfMemoryError

        cluster, ws = make_station()
        lh = ws.kernel.create_logical_host()
        with pytest.raises(OutOfMemoryError):
            ws.kernel.allocate_space(lh, ws.kernel.memory_bytes + 1)
