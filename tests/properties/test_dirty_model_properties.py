"""Property-based tests for the two-pool dirty-page model."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.dirty_model import TwoPoolDirtyModel

models = st.builds(
    TwoPoolDirtyModel,
    hot_pages=st.integers(min_value=1, max_value=64),
    hot_writes_per_sec=st.floats(min_value=0.0, max_value=2000.0,
                                 allow_nan=False, allow_infinity=False),
    cold_pages=st.integers(min_value=0, max_value=512),
    cold_writes_per_sec=st.floats(min_value=0.0, max_value=500.0,
                                  allow_nan=False, allow_infinity=False),
)

intervals = st.integers(min_value=0, max_value=60_000_000)


@given(model=models, t1=intervals, t2=intervals)
def test_expected_dirty_monotone_in_time(model, t1, t2):
    lo, hi = sorted((t1, t2))
    assert model.expected_dirty_pages(lo) <= model.expected_dirty_pages(hi) + 1e-9


@given(model=models, t=intervals)
def test_expected_dirty_bounded_by_footprint(model, t):
    assert 0.0 <= model.expected_dirty_pages(t) <= model.total_pages + 1e-9


@given(model=models)
def test_zero_interval_is_zero(model):
    assert model.expected_dirty_pages(0) == 0.0


@given(model=models, t=intervals, seed=st.integers(0, 2**31))
@settings(max_examples=50)
def test_sampler_stays_within_pools(model, t, seed):
    rng = random.Random(seed)
    pages = model.tick_pages(rng, min(t, 1_000_000), base_page=10)
    assert all(10 <= p < 10 + model.total_pages for p in pages)
    assert len(set(pages)) == len(pages)  # each page reported once per tick


@given(model=models, seed=st.integers(0, 2**31))
@settings(max_examples=20)
def test_sampler_mean_tracks_expectation(model, seed):
    """Over many ticks, distinct pages dirtied ≈ the analytic curve."""
    interval_us = 500_000
    tick_us = 25_000
    expected = model.expected_dirty_pages(interval_us)
    if expected < 1.0:
        return  # too little signal for a cheap statistical check
    rng = random.Random(seed)
    trials = 30
    total = 0
    for _ in range(trials):
        dirty = set()
        for _ in range(interval_us // tick_us):
            dirty.update(model.tick_pages(rng, tick_us))
        total += len(dirty)
    measured = total / trials
    assert abs(measured - expected) <= max(0.35 * expected, 2.0)


@given(model=models)
def test_saturation_limit(model):
    """As t -> infinity the expectation approaches the pools that have a
    nonzero write rate."""
    limit = 0
    if model.hot_writes_per_sec > 0:
        limit += model.hot_pages
    if model.cold_writes_per_sec > 0 and model.cold_pages > 0:
        limit += model.cold_pages
    forever = model.expected_dirty_pages(10**12)
    assert forever <= limit + 1e-6
