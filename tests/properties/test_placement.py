"""Placement-plane properties.

Two contracts: probing the *whole* fresh candidate set is equivalent to
trusting the cached view on a quiesced cluster (RandomK's ``k = n``
degenerate case collapses onto CachedBestFit -- the ``_fit_key`` total
order makes both pick the same host), and every policy is coordinate-
pure under the sweep pool (serial and parallel ``job_storm`` runs are
byte-identical, per policy)."""

import dataclasses

import pytest

from repro.cluster.placement import CachedBestFit, RandomK
from repro.execution import ExecSpec, exec_program
from repro.parallel import SweepSpec, run_sweep
from repro.workloads import standard_registry

from tests.helpers import make_cluster


def place_once(n, seed, policy):
    """One placed exec under ``policy`` on a quiesced ``n``-host
    cluster; returns the chosen host.

    The requester's cache is warmed from each manager's real
    ``load_digest`` at the moment of the exec (what one fallback
    multicast would have observed), so the probed and trusted runs of a
    comparison see byte-identical state -- anti-entropy rotation timing
    stays out of the property."""
    from repro.cluster.placement import HostDigest

    cluster = make_cluster(n, full=True, seed=seed,
                           toggles={"load_cache": True},
                           registry=standard_registry(scale=0.3))
    cache = cluster.host_caches["ws0"]
    chosen = []

    def session(ctx):
        for pm in cluster.program_managers.values():
            cache.observe(HostDigest.from_fields(pm.load_digest()))
        assert len({d.host for d in cache.fresh_entries()}) == n
        handle = yield from exec_program(ctx, ExecSpec(
            "cc68", args=("x.c",), where="*", policy=policy))
        chosen.append(handle.host)

    cluster.spawn_session(cluster.workstations[0], session)
    while not chosen and cluster.sim.peek() is not None:
        cluster.sim.run(until_us=cluster.sim.now + 500_000)
    assert chosen
    return chosen[0]


@pytest.mark.parametrize("n,seed", [(3, 0), (4, 7), (5, 23)])
def test_randomk_full_k_matches_best_fit_on_quiesced_cluster(n, seed):
    """With every host idle and cached fresh, probing all ``n`` of them
    and trusting the cache must agree on the placement."""
    probed_host = place_once(n, seed, RandomK(k=n))
    trusted_host = place_once(n, seed, CachedBestFit())
    assert probed_host == trusted_host


POLICIES = ("first_responder", "random_k", "best_fit")


@pytest.mark.parametrize("policy", POLICIES)
def test_job_storm_serial_parallel_byte_identity(policy):
    """Every policy's randomness comes from seeded, coordinate-pure
    streams, so a worker pool must merge to the serial bytes exactly."""
    spec = SweepSpec(
        scenario="job_storm",
        configs=({"workstations": 4, "jobs": 6, "policy": policy},),
        replications=2,
        master_seed=11,
        workers=1,
    )
    serial = run_sweep(spec)
    parallel = run_sweep(dataclasses.replace(spec, workers=2))
    assert parallel.to_json() == serial.to_json()
