"""Property-based tests for the discrete-event engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator


@given(delays=st.lists(st.integers(min_value=0, max_value=10**7), min_size=1,
                       max_size=50))
def test_callbacks_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(delays=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1,
                       max_size=30))
def test_equal_times_fire_fifo(delays):
    sim = Simulator()
    order = []
    t = max(delays)
    for i, _ in enumerate(delays):
        sim.schedule(t, order.append, i)
    sim.run()
    assert order == list(range(len(delays)))


@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       n_tasks=st.integers(min_value=1, max_value=5))
@settings(max_examples=25)
def test_same_seed_identical_trajectory(seed, n_tasks):
    def run():
        sim = Simulator(seed=seed)
        log = []

        def body(name):
            for _ in range(10):
                yield sim.rand.randint(f"d{name}", 1, 1000)
                log.append((sim.now, name))

        for i in range(n_tasks):
            sim.spawn(body(i), name=f"t{i}")
        sim.run()
        return log

    assert run() == run()


@given(until=st.integers(min_value=0, max_value=10**6),
       delays=st.lists(st.integers(min_value=0, max_value=10**6), max_size=20))
def test_run_until_never_processes_later_events(until, delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, fired.append, d)
    sim.run(until_us=until)
    assert all(d <= until for d in fired)
    assert sim.now == until
    sim.run()
    assert sorted(fired) == sorted(delays)


@given(cancel_mask=st.lists(st.booleans(), min_size=1, max_size=30))
def test_cancelled_timers_never_fire(cancel_mask):
    sim = Simulator()
    fired = []
    timers = []
    for i, cancel in enumerate(cancel_mask):
        timers.append(sim.schedule(i + 1, fired.append, i))
    for timer, cancel in zip(timers, cancel_mask):
        if cancel:
            timer.cancel()
    sim.run()
    expected = [i for i, cancel in enumerate(cancel_mask) if not cancel]
    assert fired == expected


@given(st.data())
@settings(max_examples=30)
def test_task_interleaving_is_deterministic_under_spawn_order(data):
    delays_a = data.draw(st.lists(st.integers(1, 100), min_size=1, max_size=10))
    delays_b = data.draw(st.lists(st.integers(1, 100), min_size=1, max_size=10))

    def run():
        sim = Simulator()
        log = []

        def body(tag, delays):
            for d in delays:
                yield d
                log.append((sim.now, tag))

        sim.spawn(body("a", delays_a))
        sim.spawn(body("b", delays_b))
        sim.run()
        return log

    assert run() == run()
