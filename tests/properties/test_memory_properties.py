"""Property-based tests for workstation memory accounting."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PAGE_SIZE
from repro.errors import OutOfMemoryError

from tests.helpers import BareCluster

actions = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(min_value=1, max_value=512)),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=30)),
    ),
    max_size=40,
)


@given(plan=actions)
@settings(max_examples=50, deadline=None)
def test_memory_accounting_is_exact(plan):
    """Random allocate/free sequences: used+free is invariant, frees
    restore exactly what allocation took, and over-allocation raises
    without corrupting the books."""
    cluster = BareCluster(n=1)
    kernel = cluster.stations[0].kernel
    total = kernel.memory_bytes
    live = []  # (lh, space)
    for op, arg in plan:
        if op == "alloc":
            size = arg * PAGE_SIZE
            lh = kernel.create_logical_host()
            try:
                space = kernel.allocate_space(lh, size)
            except OutOfMemoryError:
                kernel.destroy_logical_host(lh)
                # Refusal must be honest: the request truly did not fit.
                assert kernel.memory_used + size > total
                continue
            live.append((lh, space))
        else:
            if not live:
                continue
            lh, space = live.pop(arg % len(live))
            kernel.destroy_logical_host(lh)
        expected = sum(s.size_bytes for _, s in live)
        assert kernel.memory_used - expected == _base_usage(kernel, live)
        assert 0 <= kernel.memory_used <= total
    # Free everything: only the boot-time system space remains.
    for lh, _ in live:
        kernel.destroy_logical_host(lh)
    assert kernel.memory_used == 64 * 1024  # the system logical host


def _base_usage(kernel, live):
    """Memory not covered by our live allocations (the system space)."""
    return 64 * 1024
