"""Property-based tests for pid packing and group-id structure."""

from hypothesis import given
from hypothesis import strategies as st

from repro.kernel.ids import (
    GROUP_BIT,
    Pid,
    is_wellknown_local_group,
    local_kernel_server_group,
    local_program_manager_group,
)

lh_ids = st.integers(min_value=0, max_value=0xFFFF)
indexes = st.integers(min_value=0, max_value=0xFFFF)


@given(lh=lh_ids, index=indexes)
def test_pack_unpack_roundtrip(lh, index):
    pid = Pid(lh, index)
    assert Pid.from_int(pid.as_int()) == pid


@given(value=st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_unpack_pack_roundtrip(value):
    assert Pid.from_int(value).as_int() == value


@given(lh=lh_ids, index=indexes)
def test_group_bit_detection_consistent(lh, index):
    pid = Pid(lh, index)
    assert pid.is_group == bool(index & GROUP_BIT)
    assert pid.index == (index & ~GROUP_BIT)


@given(lh=lh_ids)
def test_wellknown_groups_carry_their_lhid(lh):
    for maker in (local_kernel_server_group, local_program_manager_group):
        gid = maker(lh)
        assert gid.logical_host_id == lh
        assert gid.is_group
        assert is_wellknown_local_group(gid)
        # Round-trips through the 32-bit wire format unchanged.
        assert Pid.from_int(gid.as_int()) == gid


@given(lh=lh_ids, index=indexes)
def test_ordinary_pids_are_not_wellknown_groups(lh, index):
    pid = Pid(lh, index & ~GROUP_BIT)
    assert not is_wellknown_local_group(pid)


@given(a_lh=lh_ids, a_idx=indexes, b_lh=lh_ids, b_idx=indexes)
def test_equality_matches_packed_equality(a_lh, a_idx, b_lh, b_idx):
    a, b = Pid(a_lh, a_idx), Pid(b_lh, b_idx)
    assert (a == b) == (a.as_int() == b.as_int())
    if a == b:
        assert hash(a) == hash(b)
