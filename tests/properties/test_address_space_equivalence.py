"""Observation equivalence: bitmap AddressSpace vs the seed implementation.

The flat (version-array + bitmask) page table must be indistinguishable
from the seed's one-object-per-page representation under every sequence
of kernel-visible operations: same version vectors, same
``collect_dirty`` ordering, same dirty/referenced/resident flags, same
``identical_to`` verdicts.  Hypothesis drives both implementations
through identical randomized touch/copy/collect sequences and compares
every observable after every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PAGE_SIZE
from repro.kernel import AddressSpace
from repro.kernel._legacy_address_space import LegacyAddressSpace

MAX_PAGES = 24


def _observe(space):
    """Everything the kernel can see about a space's pages."""
    return {
        "version_vector": space.version_vector(),
        "dirty": [p.dirty for p in space.pages],
        "referenced": [p.referenced for p in space.pages],
        "resident": [p.resident for p in space.pages],
        "dirty_bytes": space.dirty_bytes(),
        "dirty_order": [p.index for p in space.dirty_pages()],
    }


def _operations(n_pages):
    size = n_pages * PAGE_SIZE
    offsets = st.integers(0, size - 1)
    index_lists = st.lists(st.integers(0, n_pages - 1), max_size=2 * n_pages)
    return st.lists(
        st.one_of(
            st.tuples(st.just("touch"), offsets, st.integers(1, size),
                      st.booleans()),
            st.tuples(st.just("touch_pages"), index_lists, st.booleans()),
            st.tuples(st.just("collect_dirty")),
            st.tuples(st.just("clear_referenced")),
            st.tuples(st.just("load_image")),
            st.tuples(st.just("copy_dirty_to_twin")),
            st.tuples(st.just("copy_all_to_twin")),
        ),
        max_size=30,
    )


def _apply(space, twin, op):
    """Run one operation; returns per-step observables to compare."""
    kind = op[0]
    if kind == "touch":
        _, offset, nbytes, write = op
        nbytes = min(nbytes, space.size_bytes - offset)
        space.touch(offset, nbytes, write=write)
    elif kind == "touch_pages":
        _, indexes, write = op
        space.touch_pages(indexes, write=write)
    elif kind == "collect_dirty":
        return [p.index for p in space.collect_dirty()]
    elif kind == "clear_referenced":
        space.clear_referenced()
    elif kind == "load_image":
        space.load_image()
    elif kind == "copy_dirty_to_twin":
        twin.apply_copy(space.dirty_pages())
    elif kind == "copy_all_to_twin":
        twin.apply_copy(space.pages)
    return None


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_bitmap_space_is_observation_equivalent_to_seed(data):
    n_pages = data.draw(st.integers(1, MAX_PAGES), label="n_pages")
    size = n_pages * PAGE_SIZE
    new, new_twin = AddressSpace(size), AddressSpace(size)
    old, old_twin = LegacyAddressSpace(size), LegacyAddressSpace(size)
    ops = data.draw(_operations(n_pages), label="ops")

    for op in ops:
        new_result = _apply(new, new_twin, op)
        old_result = _apply(old, old_twin, op)
        assert new_result == old_result, op
        assert _observe(new) == _observe(old), op
        assert new.version_vector() == old.version_vector()
        assert new_twin.version_vector() == old_twin.version_vector()
        # identical_to verdicts agree, including across the twin pair.
        assert new.identical_to(new_twin) == old.identical_to(old_twin)

    # Final cross-check: the flat space also compares correctly against
    # a *legacy* space holding the same contents (mixed-representation
    # identical_to goes through the version-vector fallback).
    assert new.identical_to(old) == (
        new.version_vector() == old.version_vector()
    )


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_precopy_invariant_matches_seed(data):
    """The pre-copy convergence loop (full copy, then rounds of dirty
    copies) lands both implementations in identical states."""
    n_pages = data.draw(st.integers(1, MAX_PAGES))
    size = n_pages * PAGE_SIZE
    new, new_dst = AddressSpace(size), AddressSpace(size)
    old, old_dst = LegacyAddressSpace(size), LegacyAddressSpace(size)

    rounds = data.draw(st.lists(
        st.lists(st.integers(0, n_pages - 1), max_size=n_pages),
        min_size=1, max_size=5,
    ))
    # Round 0: full copy with cleared dirty bits (precopy_space's setup).
    for space in (new, old):
        space.collect_dirty()
    new_dst.apply_copy(new.pages)
    old_dst.apply_copy(old.pages)
    for writes in rounds:
        new.touch_pages(writes)
        old.touch_pages(writes)
        moved_new = new.collect_dirty()
        moved_old = old.collect_dirty()
        assert [p.index for p in moved_new] == [p.index for p in moved_old]
        new_dst.apply_copy(moved_new)
        old_dst.apply_copy(moved_old)
        assert new_dst.identical_to(new) == old_dst.identical_to(old)

    assert new_dst.identical_to(new)
    assert old_dst.identical_to(old)
    assert new_dst.version_vector() == old_dst.version_vector()
