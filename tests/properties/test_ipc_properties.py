"""Property-based tests for IPC delivery semantics under packet loss.

The invariant everything else rests on: whatever the loss pattern, the
application sees each request exactly once and each Send completes with
its own reply, in order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipc import Message
from repro.kernel import Receive, Reply, Send
from repro.net import BernoulliLoss

from tests.helpers import BareCluster


@given(
    loss_rate=st.floats(min_value=0.0, max_value=0.45),
    seed=st.integers(min_value=0, max_value=10_000),
    n_messages=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=25, deadline=None)
def test_at_most_once_in_order_under_loss(loss_rate, seed, n_messages):
    """The V guarantee is *at-most-once*, not guaranteed delivery: under
    extreme loss a Send may exhaust its bounded retransmissions and fail,
    but the application must never see a request twice or out of order."""
    from repro.errors import SendTimeoutError

    cluster = BareCluster(n=2, seed=seed, loss=BernoulliLoss(loss_rate))
    a, b = cluster.stations
    served = []

    def server():
        while True:
            sender, msg = yield Receive()
            served.append(msg["n"])
            yield Reply(sender, msg.replying(n=msg["n"]))

    _, server_pcb = cluster.spawn_program(b, server(), name="server")
    completed = []
    timed_out = []

    def client():
        for n in range(n_messages):
            try:
                reply = yield Send(server_pcb.pid, Message("req", n=n))
            except SendTimeoutError:
                timed_out.append(n)
                return
            completed.append(reply["n"])

    cluster.spawn_program(a, client(), name="client")
    cluster.run(until_us=300_000_000)
    # Completed sends form an in-order prefix...
    assert completed == list(range(len(completed)))
    # ...the server saw each request at most once, in order...
    assert served == sorted(set(served))
    # ...and nothing was lost without the client knowing: everything the
    # client considers complete was served.
    assert set(completed) <= set(served)
    if loss_rate == 0.0:
        assert completed == list(range(n_messages))
        assert not timed_out


@given(
    loss_rate=st.floats(min_value=0.0, max_value=0.3),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=15, deadline=None)
def test_group_send_completes_with_exactly_one_first_reply(loss_rate, seed):
    from repro.kernel.ids import Pid

    cluster = BareCluster(n=4, seed=seed, loss=BernoulliLoss(loss_rate))
    group = Pid(0xFFFF, 0x0050 | 0x8000)

    def member():
        while True:
            sender, msg = yield Receive()
            yield Reply(sender, msg.replying(ok=True))

    for ws in cluster.stations[1:]:
        _, pcb = cluster.spawn_program(ws, member(), name="m")
        ws.kernel.groups.join(group, pcb.pid)
    replies = []

    def client():
        reply = yield Send(group, Message("query"))
        replies.append(reply)

    cluster.spawn_program(cluster.stations[0], client(), name="client")
    cluster.run(until_us=300_000_000)
    assert len(replies) == 1
    assert replies[0]["ok"] is True


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_copyto_is_complete_under_loss(seed):
    from repro.config import PAGE_SIZE
    from repro.kernel import CopyToInstr, Delay

    cluster = BareCluster(n=2, seed=seed, loss=BernoulliLoss(0.15))
    a, b = cluster.stations

    def idle():
        yield Delay(3_600_000_000)

    dst_lh, dst_pcb = cluster.spawn_program(b, idle(), space_bytes=PAGE_SIZE * 12,
                                            name="dst")
    src_lh = a.kernel.create_logical_host()
    src_space = a.kernel.allocate_space(src_lh, PAGE_SIZE * 12, name="src")
    src_space.load_image()
    done = []

    def copier():
        n = yield CopyToInstr(dst_pcb.pid, src_space.pages)
        done.append(n)

    cluster.spawn_program(a, copier(), name="copier")
    cluster.run(until_us=600_000_000)
    assert done, "copy never completed despite retransmission"
    assert dst_pcb.space.identical_to(src_space)
