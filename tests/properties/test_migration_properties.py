"""Randomized end-to-end migration consistency.

For arbitrary seeds (hence arbitrary dirtying patterns, timings and
destinations), a mid-run migration must preserve: the pid, exactly one
live copy, page-version consistency, and the program's final result.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import build_cluster
from repro.cluster.monitor import ClusterMonitor
from repro.execution import ProgramImage, ProgramRegistry, exec_program, wait_for_program
from repro.kernel.process import Compute, TouchPages
from repro.migration.migrateprog import migrate_program


def churner(iterations, burst, period_us, pool):
    def body(ctx):
        rng = ctx.sim.rand.stream(f"prop:{ctx.self_pid.as_int():08x}")
        for _ in range(iterations):
            yield Compute(period_us)
            yield TouchPages(sorted(rng.sample(range(pool), burst)))
        return 0

    return body


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    burst=st.integers(min_value=1, max_value=6),
    period_ms=st.integers(min_value=10, max_value=60),
    migrate_after_ms=st.integers(min_value=200, max_value=2_000),
)
@settings(max_examples=10, deadline=None)
def test_midrun_migration_preserves_everything(seed, burst, period_ms,
                                               migrate_after_ms):
    registry = ProgramRegistry()
    registry.register(ProgramImage(
        name="victim", image_bytes=64 * 1024, space_bytes=192 * 1024,
        code_bytes=48 * 1024,
        body_factory=churner(
            iterations=6_000 // period_ms, burst=burst,
            period_us=period_ms * 1000, pool=48,
        ),
    ))
    cluster = build_cluster(n_workstations=3, seed=seed, registry=registry)
    job = {}

    def session(ctx):
        pid, pm = yield from exec_program(ctx, "victim", where="ws1")
        job["pid"] = pid
        code = yield from wait_for_program(pm, pid)
        job["code"] = code

    cluster.spawn_session(cluster.workstations[0], session)
    while "pid" not in job and cluster.sim.peek() is not None:
        cluster.sim.run(until_us=cluster.sim.now + 50_000)
    pid = job["pid"]
    cluster.run(until_us=cluster.sim.now + migrate_after_ms * 1000)
    replies = []

    def migrator(ctx):
        reply = yield from migrate_program(pid)
        replies.append(reply)

    cluster.spawn_session(cluster.workstations[0], migrator, name="mig")
    while not replies and cluster.sim.peek() is not None:
        cluster.sim.run(until_us=cluster.sim.now + 50_000)

    reply = replies[0]
    if reply["ok"]:
        monitor = ClusterMonitor(cluster)
        hosting = [ws.name for ws in cluster.workstations
                   if ws.kernel.find_pcb(pid) is not None]
        # Exactly one live copy, with the original pid, somewhere else.
        assert len(hosting) <= 1  # 0 allowed: it may finish immediately after
        assert "ws1" not in hosting
        stats = reply["stats"]
        assert stats.total_copied_bytes >= 192 * 1024  # at least one full copy
        assert stats.freeze_us < stats.total_us
    else:
        # The only legitimate failure mid-run with idle hosts around:
        assert "exited during migration" in (reply.get("error") or "")
    cluster.run(until_us=600_000_000)
    assert job.get("code") == 0
