"""Property-based tests for address spaces and dirty tracking."""

from hypothesis import given
from hypothesis import strategies as st

from repro.config import PAGE_SIZE
from repro.kernel import AddressSpace

spaces = st.integers(min_value=1, max_value=64).map(
    lambda pages: AddressSpace(pages * PAGE_SIZE)
)


@given(st.data())
def test_touch_dirties_exactly_covered_pages(data):
    space = data.draw(spaces)
    offset = data.draw(st.integers(0, space.size_bytes - 1))
    nbytes = data.draw(st.integers(1, space.size_bytes - offset))
    space.touch(offset, nbytes)
    first = offset // PAGE_SIZE
    last = (offset + nbytes - 1) // PAGE_SIZE
    dirty = {p.index for p in space.dirty_pages()}
    assert dirty == set(range(first, last + 1))


@given(st.data())
def test_collect_dirty_is_idempotent_and_preserves_versions(data):
    space = data.draw(spaces)
    indexes = data.draw(st.lists(
        st.integers(0, space.n_pages - 1), max_size=space.n_pages))
    space.touch_pages(indexes)
    before = space.version_vector()
    first_scan = {p.index for p in space.collect_dirty()}
    assert first_scan == set(indexes)
    assert space.collect_dirty() == []
    assert space.version_vector() == before


@given(st.data())
def test_versions_count_writes_per_page(data):
    space = data.draw(spaces)
    indexes = data.draw(st.lists(
        st.integers(0, space.n_pages - 1), max_size=200))
    space.touch_pages(indexes)
    for page in space.pages:
        assert page.version == indexes.count(page.index)


@given(st.data())
def test_apply_copy_makes_spaces_identical(data):
    space = data.draw(spaces)
    twin = AddressSpace(space.size_bytes)
    writes = data.draw(st.lists(
        st.integers(0, space.n_pages - 1), max_size=100))
    space.touch_pages(writes)
    twin.apply_copy(space.pages)
    assert twin.identical_to(space)
    assert space.identical_to(twin)


@given(st.data())
def test_partial_copy_then_dirty_copy_converges(data):
    """The pre-copy invariant in miniature: a full copy followed by a
    copy of everything dirtied since yields an identical space."""
    space = data.draw(spaces)
    twin = AddressSpace(space.size_bytes)
    first_writes = data.draw(st.lists(st.integers(0, space.n_pages - 1), max_size=60))
    space.touch_pages(first_writes)
    space.collect_dirty()
    twin.apply_copy(space.pages)          # round 0: full copy
    second_writes = data.draw(st.lists(st.integers(0, space.n_pages - 1), max_size=60))
    space.touch_pages(second_writes)      # concurrent mutation
    twin.apply_copy(space.collect_dirty())  # final: residual copy
    assert twin.identical_to(space)
