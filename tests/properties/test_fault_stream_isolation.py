"""Property: fault models never perturb each other's RNG streams.

Every fault model draws from its own named stream, seeded purely from
``(master_seed, stream_name)``.  The contract this buys (promised in
``repro.net.loss`` and ``repro.faults.models``): adding a model to the
pipeline leaves the draw sequences of every existing stream
byte-identical, so enabling duplication can never change *which*
packets get dropped.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.models import (
    BurstDropFault,
    CorruptFault,
    DropFault,
    DuplicateFault,
    FaultPlane,
    ReorderFault,
)
from repro.sim.random import RandomStreams, derive_seed

rates = st.floats(min_value=0.01, max_value=0.9)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


class RecordingStreams(RandomStreams):
    """RandomStreams that logs every draw, per stream name."""

    def __init__(self, master_seed):
        super().__init__(master_seed)
        self.draws = {}

    def _log(self, name, value):
        self.draws.setdefault(name, []).append(value)
        return value

    def chance(self, name, probability):
        return self._log(name, super().chance(name, probability))

    def randint(self, name, low, high):
        return self._log(name, super().randint(name, low, high))


class _Sim:
    """The slice of the simulator fault models actually touch."""

    def __init__(self, master_seed):
        self.rand = RecordingStreams(master_seed)


def _drive(plane, master_seed, deliveries=64):
    sim = _Sim(master_seed)
    for _ in range(deliveries):
        plane.plan(sim, packet=None)
    return sim.rand.draws


class TestDeriveSeed:
    def test_distinct_names_distinct_seeds(self):
        names = ["faults.drop", "faults.burst", "faults.dup",
                 "faults.reorder", "faults.corrupt", "net.loss"]
        derived = {derive_seed(0, name) for name in names}
        assert len(derived) == len(names)

    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_derivation_is_stable_and_name_keyed(self, seed):
        assert derive_seed(seed, "a") == derive_seed(seed, "a")
        assert derive_seed(seed, "a") != derive_seed(seed, "b")

    def test_stream_creation_order_is_irrelevant(self):
        forward = RandomStreams(7)
        backward = RandomStreams(7)
        a1 = [forward.uniform("a", 0, 1) for _ in range(5)]
        b1 = [forward.uniform("b", 0, 1) for _ in range(5)]
        b2 = [backward.uniform("b", 0, 1) for _ in range(5)]
        a2 = [backward.uniform("a", 0, 1) for _ in range(5)]
        assert a1 == a2 and b1 == b2


class TestModelStreamIsolation:
    @given(seed=seeds, drop=rates, dup=rates)
    @settings(max_examples=25, deadline=None)
    def test_adding_a_model_never_perturbs_existing_streams(self, seed,
                                                            drop, dup):
        # The baseline pipeline ...
        base = _drive(FaultPlane([DropFault(drop), DuplicateFault(dup)]),
                      seed)
        # ... versus the same pipeline with more models appended.
        extended = _drive(
            FaultPlane([
                DropFault(drop),
                DuplicateFault(dup),
                ReorderFault(0.5),
                CorruptFault(0.5),
            ]),
            seed,
        )
        for name in base:
            assert extended[name] == base[name], (
                f"stream {name!r} drew differently once more models "
                "were enabled -- stream isolation is broken"
            )

    @given(seed=seeds, rate=rates)
    @settings(max_examples=25, deadline=None)
    def test_burst_state_machine_draws_are_delivery_keyed(self, seed, rate):
        # The burst chain advances once per delivery regardless of what
        # the rest of the pipeline decided, so its stream too is
        # invariant under pipeline composition.
        alone = _drive(FaultPlane([BurstDropFault(rate, rate)]), seed)
        composed = _drive(
            FaultPlane([DropFault(0.5), BurstDropFault(rate, rate),
                        CorruptFault(0.5)]),
            seed,
        )
        assert composed["faults.burst"] == alone["faults.burst"]

    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_each_model_draws_only_from_its_own_stream(self, seed):
        draws = _drive(
            FaultPlane([
                DropFault(0.3),
                BurstDropFault(0.1, 0.5),
                DuplicateFault(0.3),
                ReorderFault(0.3),
                CorruptFault(0.3),
            ]),
            seed,
        )
        assert set(draws) <= {
            "faults.drop", "faults.burst", "faults.dup",
            "faults.reorder", "faults.corrupt",
        }

    def test_custom_stream_names_are_honoured(self):
        draws = _drive(
            FaultPlane([DropFault(0.5, stream="chaos.uplink"),
                        DropFault(0.5, stream="chaos.downlink")]),
            123,
        )
        assert "chaos.uplink" in draws and "chaos.downlink" in draws
        # Two instances of the same model class on different streams get
        # independent draw sequences (distinct derived seeds).
        assert draws["chaos.uplink"] != draws["chaos.downlink"]
