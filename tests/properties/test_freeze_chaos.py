"""Chaos property: random freeze/unfreeze interleavings never break IPC.

A server's logical host is frozen and unfrozen at arbitrary moments
while a client streams requests at it.  Whatever the interleaving:
every request is eventually answered exactly once, in order (freeze
windows are bounded below the retransmission budget by construction,
matching the migration use where freezes last tens of milliseconds).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipc import Message
from repro.kernel import Compute, Delay, Receive, Reply, Send

from tests.helpers import BareCluster

freeze_plans = st.lists(
    st.tuples(
        st.integers(min_value=50_000, max_value=800_000),   # run gap
        st.integers(min_value=10_000, max_value=900_000),   # freeze length
    ),
    min_size=1,
    max_size=4,
)


@given(plan=freeze_plans, seed=st.integers(0, 2_000),
       n_messages=st.integers(3, 8))
@settings(max_examples=20, deadline=None)
def test_freeze_interleavings_preserve_exactly_once(plan, seed, n_messages):
    cluster = BareCluster(n=2, seed=seed)
    a, b = cluster.stations
    served = []

    def server():
        while True:
            sender, msg = yield Receive()
            served.append(msg["n"])
            yield Compute(5_000)
            yield Reply(sender, msg.replying(n=msg["n"]))

    lh, server_pcb = cluster.spawn_program(b, server(), name="server")
    completed = []

    def client():
        for n in range(n_messages):
            reply = yield Send(server_pcb.pid, Message("req", n=n))
            completed.append(reply["n"])
            yield Delay(50_000)

    cluster.spawn_program(a, client(), name="client")

    def freezer():
        for gap, length in plan:
            yield Delay(gap)
            if lh.frozen or not lh.live_processes():
                continue
            b.kernel.freeze_logical_host(lh)
            yield Delay(length)
            if lh.frozen:
                b.kernel.unfreeze_logical_host(lh)

    freezer_lh = b.kernel.create_logical_host()
    b.kernel.allocate_space(freezer_lh, 4096)
    b.kernel.create_process(freezer_lh, freezer(), name="freezer")

    cluster.run(until_us=120_000_000)
    assert completed == list(range(n_messages))
    assert served == list(range(n_messages))
