"""Property-based tests for the CPU scheduler."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Compute, Delay, Priority

from tests.helpers import BareCluster

priorities = st.sampled_from([Priority.LOCAL, Priority.REMOTE,
                              Priority.BACKGROUND])

job_specs = st.lists(
    st.tuples(priorities, st.integers(min_value=1_000, max_value=200_000)),
    min_size=1, max_size=8,
)


@given(jobs=job_specs, seed=st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_all_jobs_complete_and_cpu_conserved(jobs, seed):
    """Whatever the mix of priorities and sizes: every job finishes, the
    CPU never over-accounts, and total busy time covers all the work."""
    cluster = BareCluster(n=1, seed=seed)
    ws = cluster.stations[0]
    finished = []
    pcbs = []

    def body(tag, us):
        yield Compute(us)
        finished.append(tag)

    for i, (priority, us) in enumerate(jobs):
        _, pcb = cluster.spawn_program(ws, body(i, us), priority=priority,
                                       name=f"j{i}")
        pcbs.append((pcb, us))
    cluster.run()
    assert sorted(finished) == list(range(len(jobs)))
    total_work = sum(us for _, us in jobs)
    busy = ws.kernel.scheduler.busy_us
    assert busy >= total_work            # all compute was performed
    assert busy <= cluster.sim.now * 1.01  # and never double-billed
    for pcb, us in pcbs:
        assert pcb.cpu_used_us >= us


@given(jobs=job_specs, seed=st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_higher_priority_always_finishes_no_later(jobs, seed):
    """Between two equal-length jobs, the higher-priority one never
    finishes after the lower-priority one (spawned simultaneously)."""
    cluster = BareCluster(n=1, seed=seed)
    ws = cluster.stations[0]
    finish_times = {}

    def body(tag, us):
        yield Compute(us)
        finish_times[tag] = cluster.sim.now

    size = 50_000
    cluster.spawn_program(ws, body("high", size), priority=Priority.LOCAL,
                          name="high")
    cluster.spawn_program(ws, body("low", size), priority=Priority.REMOTE,
                          name="low")
    for i, (priority, us) in enumerate(jobs):
        cluster.spawn_program(ws, body(f"x{i}", us), priority=priority,
                              name=f"x{i}")
    cluster.run()
    assert finish_times["high"] <= finish_times["low"]


@given(
    n_sleepers=st.integers(min_value=1, max_value=5),
    n_workers=st.integers(min_value=1, max_value=5),
    seed=st.integers(0, 1000),
)
@settings(max_examples=20, deadline=None)
def test_sleepers_never_consume_cpu(n_sleepers, n_workers, seed):
    cluster = BareCluster(n=1, seed=seed)
    ws = cluster.stations[0]
    sleepers = []

    def sleeper():
        yield Delay(500_000)

    def worker():
        yield Compute(100_000)

    for i in range(n_sleepers):
        _, pcb = cluster.spawn_program(ws, sleeper(), name=f"s{i}")
        sleepers.append(pcb)
    for i in range(n_workers):
        cluster.spawn_program(ws, worker(), name=f"w{i}")
    cluster.run()
    # Sleepers pay only instruction-dispatch overhead, no compute.
    assert all(pcb.cpu_used_us < 100 for pcb in sleepers)
