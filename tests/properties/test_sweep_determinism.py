"""The serial ≡ parallel contract, end to end.

The sweep engine promises that the merged payload is *byte-identical*
no matter how the work was scheduled: in-process, on a 1-worker pool,
or sharded across 4 workers.  These tests run real simulator scenarios
(not stubs) through every path and diff the canonical JSON.

They also pin the isolation property underneath that promise: each
replication's SimRandom streams are derived purely from its unit seed,
so running replications back-to-back in one warm process cannot leak
randomness (or any other state) between them.
"""

import dataclasses

from repro.parallel import SweepSpec, run_sweep
from repro.parallel.engine import SweepResult, _run_pool_pass
from repro.parallel.worker import run_chunk

# Cheap but real: full cluster build + multicast IPC per unit.
SPEC = SweepSpec.from_grid(
    "ping",
    {"count": [2, 4, 6]},        # 3 configs...
    replications=4,              # ... x 4 replications, per the issue
    master_seed=1234,
)


def _rows_from_pool(spec, workers):
    """Run the sweep on an actual pool of ``workers`` processes (the
    engine's serial shortcut for workers<=1 is deliberately bypassed so
    a true 1-worker pool gets exercised)."""
    pooled = dataclasses.replace(spec, workers=workers)
    results = {}
    failed = _run_pool_pass(
        pooled, list(enumerate(pooled.chunked_units())), results
    )
    assert failed == []
    return [
        [results[(ci, ri)] for ri in range(spec.replications)]
        for ci in range(len(spec.configs))
    ]


class TestByteIdentity:
    def test_serial_vs_1_worker_vs_4_workers(self):
        serial = run_sweep(SPEC)
        assert serial.workers_used == 1

        one = SweepResult(
            spec=SPEC, rows=_rows_from_pool(SPEC, 1), metrics=None,
            wall_seconds=0.0, workers_used=1, chunks=0,
            chunks_retried=0, chunks_fallback=0,
        )
        four = run_sweep(dataclasses.replace(SPEC, workers=4))
        assert four.workers_used == 4

        blob = serial.to_json()
        assert one.to_json() == blob
        assert four.to_json() == blob

    def test_chunk_size_is_invisible(self):
        base = dataclasses.replace(SPEC, workers=2)
        by_one = run_sweep(dataclasses.replace(base, chunk_size=1))
        by_five = run_sweep(dataclasses.replace(base, chunk_size=5))
        assert by_one.to_json() == by_five.to_json()

    def test_metrics_merge_is_schedule_invariant(self):
        spec = dataclasses.replace(SPEC, collect_metrics=True)
        serial = run_sweep(spec)
        parallel = run_sweep(dataclasses.replace(spec, workers=4))
        assert serial.metrics == parallel.metrics
        assert serial.metrics["merged_from"] == spec.n_units
        assert serial.to_json() == parallel.to_json()


class TestStreamIsolation:
    """SimRandom streams must never leak across replications."""

    def test_warm_process_equals_fresh_runs(self):
        # All 12 units back-to-back in THIS process (one warm dict) ...
        together = dict(
            ((ci, ri), r)
            for ci, ri, r in run_chunk("ping", SPEC.units())
        )
        # ... versus each unit alone, rebuilt from just its seed.
        for ci, ri, seed, config in SPEC.units():
            [(_, _, alone)] = run_chunk("ping", [(ci, ri, seed, config)])
            assert alone == together[(ci, ri)], (
                f"unit ({ci},{ri}) changed when run after other units -- "
                "state leaked between replications"
            )

    def test_execution_order_is_irrelevant(self):
        units = SPEC.units()
        forward = run_chunk("ping", units)
        backward = run_chunk("ping", list(reversed(units)))
        assert dict(((ci, ri), r) for ci, ri, r in forward) == dict(
            ((ci, ri), r) for ci, ri, r in backward
        )

    def test_distinct_seeds_give_distinct_streams(self):
        # The seeds themselves are distinct...
        seeds = [seed for _, _, seed, _ in SPEC.units()]
        assert len(set(seeds)) == len(seeds)
        # ...and replications of the SAME config diverge in their
        # simulated trajectories, not just their seeds.  The migration
        # scenario consumes seeded randomness (dirty-page behavior), so
        # its per-seed event counts must differ.
        spec = SweepSpec(
            scenario="migration",
            configs=({"scale": 0.3, "settle_ms": 200},),
            replications=4,
            master_seed=1234,
        )
        rows = run_sweep(spec).rows
        trajectories = {
            (r["sim_time_us"], r["events"], r["packets"])
            for r in rows[0]
        }
        assert len(trajectories) > 1, (
            "replications with different seeds produced identical "
            "trajectories; seeding may not reach the simulator"
        )
