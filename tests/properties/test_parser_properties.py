"""Property-based tests for the shell parser."""

from hypothesis import given
from hypothesis import strategies as st

from repro.shell import Command, ParseError, parse_command

# Program/argument tokens: printable, no whitespace, no metacharacters.
token = st.text(
    alphabet=st.characters(
        whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="-_./"
    ),
    min_size=1,
    max_size=12,
).filter(lambda s: "@" not in s and s not in {"&", "#"} and not s.startswith("#"))

targets = st.one_of(st.just("*"), token)


@given(program=token, args=st.lists(token, max_size=4),
       target=st.one_of(st.none(), targets), background=st.booleans())
def test_render_parse_roundtrip(program, args, target, background):
    parts = [program, *args]
    if target is not None:
        parts += ["@", target]
    if background:
        parts.append("&")
    command = parse_command(" ".join(parts))
    assert command.program == program
    assert command.args == tuple(args)
    assert command.target == (target if target is not None else "local")
    assert command.background == background


@given(text=st.text(max_size=40))
def test_parser_never_raises_anything_but_parse_error(text):
    try:
        result = parse_command(text)
    except ParseError:
        return
    assert result is None or isinstance(result, Command)


@given(program=token, target=token)
def test_attached_at_form_equivalent_to_spaced(program, target):
    attached = parse_command(f"{program}@{target}")
    spaced = parse_command(f"{program} @ {target}")
    assert attached == spaced


@given(line=st.text(alphabet=" \t", max_size=10))
def test_blank_lines_parse_to_none(line):
    assert parse_command(line) is None
