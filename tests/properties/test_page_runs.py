"""Property tests for extent coalescing: ``mask_runs`` and the
``PageRuns`` sequences the copy data plane streams (ISSUE 9 satellite).

The load-bearing identity is the round trip bitmap -> runs -> pages ->
bitmap: coalescing must neither drop, duplicate, merge-across-gaps nor
reorder a single page, including the edge cases that bit tricks get
wrong (empty bitmap, a single trailing page, one full-span run)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.config import PAGE_SIZE
from repro.kernel import AddressSpace
from repro.kernel.address_space import mask_runs

masks = st.integers(min_value=0, max_value=(1 << 96) - 1)


def _runs_to_mask(runs):
    mask = 0
    for start, length in runs:
        mask |= ((1 << length) - 1) << start
    return mask


# ------------------------------------------------------------- mask_runs

@given(masks)
def test_mask_runs_round_trips(mask):
    runs = mask_runs(mask)
    assert _runs_to_mask(runs) == mask


@given(masks)
def test_runs_are_maximal_ascending_and_disjoint(mask):
    runs = mask_runs(mask)
    prev_end = None
    for start, length in runs:
        assert length >= 1
        if prev_end is not None:
            # Ascending AND non-adjacent: adjacent runs would mean the
            # coalescer failed to merge a maximal extent.
            assert start > prev_end + 1
        prev_end = start + length - 1


def test_empty_bitmap_has_no_runs():
    assert mask_runs(0) == []


def test_single_trailing_page():
    # The highest page alone -- the off-by-one magnet for shift loops.
    for n in (1, 2, 63, 64, 65):
        mask = 1 << (n - 1)
        assert mask_runs(mask) == [(n - 1, 1)]


def test_full_span_is_one_run():
    for n in (1, 7, 64, 200):
        assert mask_runs((1 << n) - 1) == [(0, n)]


# -------------------------------------------------------------- PageRuns

spaces = st.integers(min_value=1, max_value=48).map(
    lambda pages: AddressSpace(pages * PAGE_SIZE)
)


@given(st.data())
def test_collect_dirty_runs_covers_and_clears(data):
    space = data.draw(spaces)
    indexes = data.draw(st.sets(st.integers(0, space.n_pages - 1)))
    space.touch_pages(sorted(indexes))
    runs = space.collect_dirty_runs()
    # Runs -> pages -> indexes reproduces the dirty set, in order...
    assert runs.index_list() == sorted(indexes)
    assert [p.index for p in runs] == sorted(indexes)
    assert len(runs) == len(indexes)
    assert all(runs.has_index(i) for i in indexes)
    assert not any(runs.has_index(i) for i in range(space.n_pages)
                   if i not in indexes)
    # ...the gather cleared the bitmap...
    assert space.dirty_mask == 0
    assert space.collect_dirty_runs().runs == ()
    # ...and the extents agree with the pure-mask coalescer.
    assert list(runs.runs) == mask_runs(_runs_to_mask(runs.runs))


@given(st.data())
def test_page_runs_round_trip_runs_pages_runs(data):
    """runs -> pages -> (re-coalesced) runs is the identity."""
    space = data.draw(spaces)
    indexes = data.draw(st.sets(st.integers(0, space.n_pages - 1),
                                min_size=1))
    space.touch_pages(sorted(indexes))
    runs = space.collect_dirty_runs()
    remask = 0
    for page in runs:
        remask |= 1 << page.index
    assert mask_runs(remask) == list(runs.runs)


def test_full_runs_spans_everything_once():
    space = AddressSpace(13 * PAGE_SIZE)
    runs = space.full_runs()
    assert list(runs.runs) == [(0, 13)]
    assert runs.index_list() == list(range(13))
    assert len(runs) == 13


def test_empty_space_edge_cases():
    space = AddressSpace(PAGE_SIZE)  # smallest legal space
    assert space.collect_dirty_runs().index_list() == []
    space.touch_pages([0])
    assert space.collect_dirty_runs().index_list() == [0]
