"""Fuzzing the shell: arbitrary (token-valid) scripts never crash the
cluster -- errors surface as shell output lines, not kernel faults."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import build_cluster
from repro.shell import Shell
from repro.workloads import standard_registry

programs = st.sampled_from(["tex", "make", "longsim", "nonexistent"])
targets = st.sampled_from(["", "@ ws0", "@ ws1", "@ *", "@ ghost-host"])
builtins = st.sampled_from([
    "hosts", "ps", "ps ws1", "migrateprog", "migrations",
    "wait %1", "kill %1", "suspend %1", "resume %1", "kill %9",
])
garbage = st.sampled_from(["@", "@ x y z", "&", "tex @@ ws1", "# comment", ""])


def command_lines():
    exec_lines = st.builds(
        lambda p, t, bg: f"{p} {t} {'&' if bg else ''}".strip(),
        programs, targets, st.booleans(),
    )
    return st.lists(st.one_of(exec_lines, builtins, garbage),
                    min_size=1, max_size=6)


@given(script=command_lines(), seed=st.integers(0, 500))
@settings(max_examples=15, deadline=None)
def test_random_scripts_never_crash_the_world(script, seed):
    cluster = build_cluster(n_workstations=3, seed=seed,
                            registry=standard_registry(scale=0.05))
    shell = Shell(cluster, "ws0")
    shell.run_script(script)
    cluster.run(until_us=240_000_000)
    # The shell session itself never faulted...
    for ws in cluster.workstations:
        fault_names = [p.name for p in ws.kernel.faulted]
        assert "shell" not in fault_names, (script, fault_names)
    # ...no simulator-level failures escaped...
    assert cluster.sim.failures == []
    # ...and the services are all still alive.
    for name, pm in cluster.program_managers.items():
        assert pm.pcb.alive, name
