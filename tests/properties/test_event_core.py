"""Heap vs wheel event-core equivalence on randomized programs.

One randomized op program -- schedules across all three queue regimes
(delay 0 -> now-queue, near -> wheel bucket, far -> overflow heap),
cancellations, partial runs, task sleeps, interrupts and AnyOf
combinators -- is interpreted twice, once on the reference heap core and
once on the hybrid wheel core.  Fire order, the ``now`` trajectory,
``event_count``, ``alive_event_count``, ``peek()`` and the ``_seq``
allocation stream must be identical after every single op: the toggle
may only change wall-clock cost, never the simulation.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._fastpath import FASTPATH
from repro.sim import AnyOf, Simulator
from repro.sim.engine import _WHEEL_SPAN

# Delays straddle the wheel span so every program can hit the now-queue,
# the wheel and the overflow heap.
_DELAY = st.integers(min_value=0, max_value=_WHEEL_SPAN + 10_000)

_OP = st.one_of(
    st.tuples(st.just("schedule"), _DELAY),
    st.tuples(st.just("zero"), st.just(0)),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=255)),
    st.tuples(st.just("run_events"), st.integers(min_value=1, max_value=8)),
    st.tuples(st.just("run_until"), st.integers(min_value=0, max_value=50_000)),
    st.tuples(st.just("sleeper"), _DELAY),
    st.tuples(st.just("interrupt"), st.integers(min_value=0, max_value=300)),
    st.tuples(st.just("anyof"), st.integers(min_value=0, max_value=120)),
)

_PROGRAM = st.lists(_OP, min_size=1, max_size=40)


def _execute(ops, use_wheel):
    saved = FASTPATH.event_wheel
    FASTPATH.event_wheel = use_wheel
    try:
        sim = Simulator(seed=11)
    finally:
        FASTPATH.event_wheel = saved
    assert sim.event_core == ("wheel" if use_wheel else "heap")

    log = []
    handles = []
    tasks = []
    tags = itertools.count()

    def fire(tag):
        log.append(("fire", sim.now, tag))

    def sleeper(delay, tag):
        yield delay
        log.append(("wake", sim.now, tag))

    def racer(delay, tag):
        got = yield AnyOf([delay, delay + 37, 50_000])
        log.append(("any", sim.now, tag, got[0]))

    trail = []
    for op, arg in ops:
        if op == "schedule" or op == "zero":
            handles.append(sim.schedule(arg, fire, next(tags)))
        elif op == "cancel":
            if handles:
                handles[arg % len(handles)].cancel()
        elif op == "run_events":
            sim.run(max_events=arg)
        elif op == "run_until":
            sim.run(until_us=sim.now + arg)
        elif op == "sleeper":
            tasks.append(sim.spawn(sleeper(arg, next(tags))))
        elif op == "interrupt":
            if tasks:
                sim.schedule(arg, tasks[arg % len(tasks)].interrupt)
        elif op == "anyof":
            tasks.append(sim.spawn(racer(arg, next(tags))))
        trail.append(
            (sim.now, sim.event_count, sim.alive_event_count, sim._seq, sim.peek())
        )
    sim.run()
    trail.append((sim.now, sim.event_count, sim.alive_event_count, sim._seq))
    return log, trail


@given(ops=_PROGRAM)
@settings(max_examples=60, deadline=None)
def test_heap_and_wheel_trajectories_identical(ops):
    assert _execute(ops, use_wheel=False) == _execute(ops, use_wheel=True)


@given(
    delays=st.lists(_DELAY, min_size=1, max_size=60),
    cancel_every=st.integers(min_value=2, max_value=7),
)
@settings(max_examples=40, deadline=None)
def test_fire_order_identical_under_cancellation_pressure(delays, cancel_every):
    def run(use_wheel):
        saved = FASTPATH.event_wheel
        FASTPATH.event_wheel = use_wheel
        try:
            sim = Simulator()
        finally:
            FASTPATH.event_wheel = saved
        fired = []
        handles = [
            sim.schedule(d, fired.append, i) for i, d in enumerate(delays)
        ]
        for h in handles[::cancel_every]:
            h.cancel()
        sim.run()
        return fired, sim.now, sim.event_count, sim.alive_event_count

    assert run(False) == run(True)
