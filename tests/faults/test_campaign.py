"""The chaos campaign's acceptance contract.

* Replay determinism: the same (schedule, seed) grid produces a
  byte-identical payload and verdict table whether it ran serially or
  across worker processes (the sweep engine's guarantee, inherited).
* Under every fault schedule, all four invariants hold.
* The intentionally-broken configuration (lazy rebinding disabled)
  *must* trip no-residual-dependency -- proof the harness can actually
  see the class of bug it exists for.
"""

import pytest

from repro.errors import SimulationError
from repro.faults.campaign import (
    FAULT_SCHEDULES,
    build_fault_plane,
    campaign_ok,
    campaign_spec,
    chaos_scenario,
    run_campaign,
    schedule_names,
    verdict_table,
)
from repro.faults.invariants import INVARIANTS
from repro.faults.models import (
    BurstDropFault,
    CorruptFault,
    DropFault,
    DuplicateFault,
    ReorderFault,
)
from repro.parallel import scenario_names


class TestScheduleRegistry:
    def test_chaos_is_a_registered_scenario(self):
        assert "chaos" in scenario_names()

    def test_schedule_names_sorted_and_complete(self):
        assert schedule_names() == sorted(FAULT_SCHEDULES)
        # The acceptance bar: at least 5 distinct fault types swept.
        assert len(FAULT_SCHEDULES) >= 5

    def test_fault_plane_pipeline_order_is_fixed(self):
        plane = build_fault_plane({
            "corrupt": 0.1, "drop": 0.1, "reorder": 0.1,
            "duplicate": 0.1, "burst": (0.1, 0.5),
        })
        assert [type(m) for m in plane.models] == [
            DropFault, BurstDropFault, DuplicateFault, ReorderFault,
            CorruptFault,
        ]

    def test_unknown_schedule_rejected_by_scenario(self):
        with pytest.raises(SimulationError, match="unknown fault schedule"):
            chaos_scenario({"schedule": "gremlins"}, seed=0)

    def test_unknown_schedule_rejected_by_spec(self):
        with pytest.raises(SimulationError, match="unknown fault schedule"):
            campaign_spec(schedules=["drop", "gremlins"])


class TestReplayDeterminism:
    def test_serial_and_parallel_runs_are_byte_identical(self):
        kwargs = dict(schedules=["drop", "crash"], seeds=3, master_seed=11,
                      messages=12)
        serial = run_campaign(workers=1, **kwargs)
        parallel = run_campaign(workers=2, **kwargs)
        assert parallel.workers_used == 2
        assert serial.to_json() == parallel.to_json()
        assert verdict_table(serial) == verdict_table(parallel)

    def test_same_seed_replays_identically(self):
        a = chaos_scenario({"schedule": "mixed", "messages": 10}, seed=5)
        b = chaos_scenario({"schedule": "mixed", "messages": 10}, seed=5)
        assert a == b

    def test_distinct_seeds_give_distinct_trajectories(self):
        runs = {
            (r["events"], r["packets"], tuple(sorted(r["faults"].items())))
            for r in (
                chaos_scenario({"schedule": "mixed", "messages": 10}, seed=s)
                for s in range(4)
            )
        }
        assert len(runs) > 1


class TestInvariantsHoldUnderEverySchedule:
    def test_all_schedules_all_seeds_pass(self):
        result = run_campaign(seeds=2, master_seed=3, messages=15)
        assert campaign_ok(result)
        for row in result.rows:
            for run in row:
                assert run["invariants"] == {name: 0 for name in INVARIANTS}
                assert run["invariants_ok"]
                # The harness actually watched the run.
                assert run["deliveries_checked"] > 0
                assert run["events_checked"] > 0

    def test_every_schedule_actually_injects_faults(self):
        result = run_campaign(seeds=2, master_seed=3, messages=15)
        for ci, config in enumerate(result.spec.configs):
            injected = sum(
                sum(run["faults"].values()) for run in result.rows[ci]
            )
            assert injected > 0, (
                f"schedule {config['schedule']!r} injected no faults -- "
                "the campaign is not stressing anything"
            )

    def test_crash_schedule_crashes_reboots_and_evicts(self):
        run = chaos_scenario({"schedule": "crash", "messages": 10}, seed=1)
        kinds = [kind for _, _, kind in run["crash_log"]]
        assert kinds == ["crash", "reboot"]
        assert run["evictions"] >= 1
        assert run["bindings_scrubbed"] >= 0
        assert run["invariants_ok"]


class TestBrokenRebindingIsCaught:
    """Disable lazy rebinding entirely and the campaign must FAIL
    no-residual-dependency: stale senders keep hitting the old host
    long after the migration committed."""

    CONFIG = {"schedule": "drop", "messages": 20}

    def test_broken_mode_trips_no_residual_dependency(self):
        run = chaos_scenario(dict(self.CONFIG, break_rebinding=True), seed=42)
        assert run["migration"] and run["migration"]["success"]
        assert run["invariants"]["no-residual-dependency"] > 0
        assert not run["invariants_ok"]

    def test_control_run_is_clean(self):
        run = chaos_scenario(self.CONFIG, seed=42)
        assert run["invariants"] == {name: 0 for name in INVARIANTS}
        assert run["invariants_ok"]
        assert run["completed"] == run["messages"]

    def test_campaign_verdict_goes_fail(self):
        result = run_campaign(schedules=["drop"], seeds=2, master_seed=0,
                              messages=20, break_rebinding=True)
        assert not campaign_ok(result)
        table = verdict_table(result)
        assert "FAIL" in table and "PASS" not in table

    def test_replay_failing_run_writes_loadable_bundle(self, tmp_path):
        from repro.faults import replay_failing_run
        from repro.obs import load_postmortem

        result = run_campaign(schedules=["drop"], seeds=1, master_seed=0,
                              messages=20, break_rebinding=True)
        assert not campaign_ok(result)
        bundle_dir = replay_failing_run(result, str(tmp_path / "bundle"))
        assert bundle_dir is not None
        bundle = load_postmortem(bundle_dir)
        manifest = bundle["manifest"]
        assert manifest["reason"] == "invariant-violation"
        assert manifest["context"]["scenario"] == "chaos"
        assert manifest["context"]["schedule"] == "drop"
        assert manifest["context"]["seed"] == result.spec.unit_seed(0, 0)
        assert not bundle["invariants"]["ok"]
        assert bundle["invariants"]["summary"]["no-residual-dependency"] > 0
        # The trace tail captured real traffic up to the violation.
        assert bundle["trace"]["traceEvents"]
        assert bundle["metrics"]["cluster"]

    def test_replay_on_clean_campaign_returns_none(self, tmp_path):
        from repro.faults import replay_failing_run

        result = run_campaign(schedules=["drop"], seeds=1, master_seed=0,
                              messages=10)
        assert campaign_ok(result)
        assert replay_failing_run(result, str(tmp_path)) is None

    def test_chaos_cli_exits_nonzero_and_dumps_postmortem(self, tmp_path,
                                                          capsys):
        from repro.__main__ import main
        from repro.obs import load_postmortem

        bundle_dir = tmp_path / "pm"
        rc = main(["chaos", "--schedules", "drop", "--seeds", "1",
                   "--messages", "20", "--break-rebinding",
                   "--postmortem", str(bundle_dir)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "FAIL" in captured.out
        assert "postmortem bundle" in captured.err
        assert load_postmortem(str(bundle_dir))["manifest"][
            "reason"] == "invariant-violation"

    def test_chaos_cli_clean_run_exits_zero_no_bundle(self, tmp_path,
                                                      capsys):
        from repro.__main__ import main

        bundle_dir = tmp_path / "pm"
        rc = main(["chaos", "--schedules", "drop", "--seeds", "1",
                   "--messages", "10", "--postmortem", str(bundle_dir)])
        capsys.readouterr()
        assert rc == 0
        assert not bundle_dir.exists()

    def test_postmortem_replay_does_not_perturb_verdict_payload(
            self, tmp_path):
        # The armed replay enables tracing/metrics; the deterministic
        # verdict fields must match the unarmed run exactly.
        import json

        base = chaos_scenario(
            dict(self.CONFIG, break_rebinding=True), seed=42
        )
        armed = chaos_scenario(
            dict(self.CONFIG, break_rebinding=True,
                 postmortem_dir=str(tmp_path / "pm")),
            seed=42,
        )
        armed.pop("postmortem")
        assert json.dumps(armed, sort_keys=True, default=str) == \
            json.dumps(base, sort_keys=True, default=str)


class TestVerdictTable:
    def test_table_lists_every_schedule_and_invariant(self):
        result = run_campaign(schedules=["drop", "reorder"], seeds=2,
                              master_seed=7, messages=10)
        table = verdict_table(result)
        for name in INVARIANTS:
            assert name in table
        assert "drop" in table and "reorder" in table
        assert table.strip().endswith("(0 violation(s))")
        assert "verdict: PASS" in table
