"""Unit tests for the invariant harness: each hook, both strictness
modes, and the structured context carried by violations."""

import pytest

from repro.errors import InvariantViolation
from repro.faults.invariants import INVARIANTS, InvariantChecker
from repro.sim import Simulator


class _Lh:
    def __init__(self, frozen=False, procs=1):
        self.frozen = frozen
        self._procs = procs

    def live_processes(self):
        return [object()] * self._procs


class _Kernel:
    def __init__(self, name, alive=True, hosts=None):
        self.name = name
        self.alive = alive
        self.logical_hosts = dict(hosts or {})


class _Station:
    def __init__(self, kernel):
        self.kernel = kernel


class _Cluster:
    def __init__(self, *kernels):
        self.workstations = [_Station(k) for k in kernels]
        self.server_machines = []


def _checker(**kwargs):
    kwargs.setdefault("grace_us", 1_000_000)
    return InvariantChecker(cluster=None, **kwargs)


class TestAtMostOnce:
    def test_first_delivery_is_fine(self):
        checker = _checker()
        checker.note_request_delivered("pid-a", 3, "pid-b")
        assert checker.ok
        assert checker.deliveries_checked == 1

    def test_second_delivery_of_same_key_violates(self):
        checker = _checker(strict=False)
        checker.note_request_delivered("pid-a", 3, "pid-b")
        checker.note_request_delivered("pid-a", 3, "pid-b")
        assert not checker.ok
        assert checker.summary()["at-most-once"] == 1

    def test_retransmission_with_new_seq_is_distinct(self):
        checker = _checker()
        checker.note_request_delivered("pid-a", 3, "pid-b")
        checker.note_request_delivered("pid-a", 4, "pid-b")
        checker.note_request_delivered("pid-c", 3, "pid-b")
        assert checker.ok

    def test_strict_raises_with_structured_context(self):
        checker = _checker(strict=True)
        checker.note_request_delivered("pid-a", 9, "pid-b")
        with pytest.raises(InvariantViolation) as exc_info:
            checker.note_request_delivered("pid-a", 9, "pid-b")
        violation = exc_info.value
        assert violation.invariant == "at-most-once"
        assert violation.detail["seq"] == 9
        assert violation.detail["count"] == 2
        assert violation.detail["sender"] == "pid-a"
        assert violation.detail["recipient"] == "pid-b"


class TestNoResidualDependency:
    def test_pre_migration_churn_is_not_residual(self):
        checker = _checker(strict=True)
        checker.note_stale_request(lhid=5, host="ws1", now=10_000_000)
        assert checker.ok

    def test_stale_traffic_inside_grace_window_tolerated(self):
        checker = _checker(strict=True, grace_us=1_000_000)
        checker.note_migration_commit(lhid=5, old_host="ws1", now=100)
        checker.note_stale_request(lhid=5, host="ws1", now=100 + 1_000_000)
        assert checker.ok

    def test_stale_traffic_past_grace_violates(self):
        checker = _checker(strict=False, grace_us=1_000_000)
        checker.note_migration_commit(lhid=5, old_host="ws1", now=100)
        checker.note_stale_request(lhid=5, host="ws1", now=1_500_000)
        assert checker.summary()["no-residual-dependency"] == 1
        violation = checker.violations[0]
        assert violation.invariant == "no-residual-dependency"
        assert violation.at_us == 1_500_000
        assert violation.detail["lhid"] == 5
        assert violation.detail["host"] == "ws1"
        assert violation.detail["committed_at"] == 100

    def test_stale_traffic_at_a_different_host_is_unrelated(self):
        # Stale requests at some third host (e.g. after a reboot) are
        # not this invariant's business.
        checker = _checker(strict=True, grace_us=1_000_000)
        checker.note_migration_commit(lhid=5, old_host="ws1", now=100)
        checker.note_stale_request(lhid=5, host="ws2", now=9_000_000)
        assert checker.ok


class TestPageVersionMonotonicity:
    class _Page:
        def __init__(self, index, version):
            self.index = index
            self.version = version

    class _Space:
        name = "space-a"

    def test_monotone_rounds_are_fine(self):
        checker = _checker(strict=True)
        space = self._Space()
        checker.note_page_versions(space, [self._Page(0, 1), self._Page(1, 1)])
        checker.note_page_versions(space, [self._Page(0, 3), self._Page(1, 1)])
        assert checker.ok

    def test_version_regression_violates(self):
        checker = _checker(strict=False)
        space = self._Space()
        checker.note_page_versions(space, [self._Page(7, 4)])
        checker.note_page_versions(space, [self._Page(7, 2)])
        assert checker.summary()["page-version-monotonicity"] == 1
        violation = checker.violations[0]
        assert violation.detail["page"] == 7
        assert violation.detail["was"] == 4
        assert violation.detail["now_version"] == 2
        assert violation.detail["space"] == "space-a"

    def test_spaces_are_tracked_independently(self):
        checker = _checker(strict=True)
        a, b = self._Space(), self._Space()
        checker.note_page_versions(a, [self._Page(0, 9)])
        checker.note_page_versions(b, [self._Page(0, 1)])  # other space
        assert checker.ok


class TestSingleExecution:
    def _sim(self):
        return Simulator(seed=0)

    def test_one_runnable_copy_is_fine(self):
        lh = _Lh()
        cluster = _Cluster(_Kernel("ws0", hosts={5: lh}), _Kernel("ws1"))
        checker = InvariantChecker(cluster, grace_us=0)
        checker.after_event(self._sim())
        assert checker.ok

    def test_frozen_source_copy_during_commit_window_is_fine(self):
        # During migration the same lhid exists on two machines -- but
        # the source is frozen, which is exactly the legal state.
        lh_frozen = _Lh(frozen=True)
        lh_live = _Lh()
        cluster = _Cluster(
            _Kernel("ws0", hosts={5: lh_frozen}),
            _Kernel("ws1", hosts={5: lh_live}),
        )
        checker = InvariantChecker(cluster, grace_us=0)
        checker.after_event(self._sim())
        assert checker.ok

    def test_two_runnable_copies_violate(self):
        cluster = _Cluster(
            _Kernel("ws0", hosts={5: _Lh()}),
            _Kernel("ws1", hosts={5: _Lh()}),
        )
        checker = InvariantChecker(cluster, strict=False, grace_us=0)
        checker.after_event(self._sim())
        assert checker.summary()["single-execution"] == 1
        violation = checker.violations[0]
        assert violation.detail["lhid"] == 5
        assert sorted(violation.detail["hosts"]) == ["ws0", "ws1"]

    def test_dead_kernel_copy_does_not_count(self):
        cluster = _Cluster(
            _Kernel("ws0", hosts={5: _Lh()}),
            _Kernel("ws1", alive=False, hosts={5: _Lh()}),
        )
        checker = InvariantChecker(cluster, grace_us=0)
        checker.after_event(self._sim())
        assert checker.ok

    def test_check_interval_thins_the_scan(self):
        cluster = _Cluster(_Kernel("ws0"))
        checker = InvariantChecker(cluster, grace_us=0,
                                   check_interval_events=4)
        sim = self._sim()
        for _ in range(8):
            checker.after_event(sim)
        assert checker.events_checked == 2


class TestReporting:
    def test_summary_always_lists_all_four_invariants(self):
        checker = _checker()
        assert checker.summary() == {name: 0 for name in INVARIANTS}

    def test_non_strict_collects_every_breach(self):
        checker = _checker(strict=False)
        for _ in range(3):
            checker.note_request_delivered("a", 1, "b")
        assert len(checker.violations) == 2  # deliveries 2 and 3
        assert checker.summary()["at-most-once"] == 2

    def test_install_sets_the_simulator_hook(self):
        sim = Simulator(seed=0)
        assert sim.invariants is None
        checker = _checker().install(sim)
        assert sim.invariants is checker
