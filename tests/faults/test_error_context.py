"""Structured context on fault-path exceptions.

Failure tests assert on fields, not message substrings: a timed-out
Send knows who was talking to whom, which operation, how many
retransmissions it burned, and whether the rebind fallback had already
been tried."""

import pytest

from repro.errors import (
    CopyFailedError,
    InvariantViolation,
    IpcError,
    MigrationError,
    ReproError,
    SendTimeoutError,
)
from repro.ipc import Message
from repro.kernel import CopyToInstr, Delay, Send
from repro.kernel.ids import local_kernel_server_group

from tests.helpers import BareCluster


def _idle():
    yield Delay(600_000_000)


class TestSendTimeoutContext:
    def _timeout_against_crashed_host(self, rebind_enabled=True):
        cluster = BareCluster(n=2)
        a, b = cluster.stations
        a.kernel.ipc.rebind_enabled = rebind_enabled
        dst_lh, dst_pcb = cluster.spawn_program(b, _idle(), name="dst")
        caught = []

        def client():
            # Prime the binding, then crash the destination.
            yield Send(local_kernel_server_group(dst_lh.lhid),
                       Message("get-time"))
            b.crash()
            try:
                yield Send(dst_pcb.pid, Message("ping"))
            except SendTimeoutError as exc:
                caught.append(exc)

        _, client_pcb = cluster.spawn_program(a, client(), name="client")
        cluster.run(until_us=120_000_000)
        assert len(caught) == 1
        return cluster, client_pcb, dst_pcb, caught[0]

    def test_timeout_carries_src_dst_op_and_retransmissions(self):
        cluster, client_pcb, dst_pcb, exc = \
            self._timeout_against_crashed_host()
        assert exc.op == "send"
        assert exc.src == str(client_pcb.pid)
        assert exc.dst == str(dst_pcb.pid)
        assert exc.retransmissions == cluster.model.max_retransmissions
        # The paper's §3.1.4 fallback ran (and also got no answer).
        assert exc.rebound is True

    def test_timeout_with_rebinding_disabled_reports_rebound_false(self):
        _, _, _, exc = self._timeout_against_crashed_host(
            rebind_enabled=False
        )
        assert exc.rebound is False
        assert exc.retransmissions > 0


class TestCopyFailedContext:
    def test_copyto_to_crashed_host_carries_context(self):
        from repro.config import PAGE_SIZE

        cluster = BareCluster(n=2)
        a, b = cluster.stations
        dst_lh, dst_pcb = cluster.spawn_program(
            b, _idle(), space_bytes=PAGE_SIZE * 4, name="dst"
        )
        src_lh = a.kernel.create_logical_host()
        src_space = a.kernel.allocate_space(src_lh, PAGE_SIZE * 4,
                                            name="src")
        caught = []

        def copier():
            yield Send(local_kernel_server_group(dst_lh.lhid),
                       Message("get-time"))
            b.crash()
            try:
                yield CopyToInstr(dst_pcb.pid, src_space.pages)
            except CopyFailedError as exc:
                caught.append(exc)

        cluster.spawn_program(a, copier(), lh=src_lh, name="copier")
        cluster.run(until_us=120_000_000)
        assert len(caught) == 1
        exc = caught[0]
        assert exc.op == "copyto"
        assert exc.dst == str(dst_pcb.pid)
        assert exc.retransmissions > 0


class TestConstructionAndHierarchy:
    def test_send_timeout_defaults(self):
        exc = SendTimeoutError("boom")
        assert exc.op == "send"
        assert exc.src is None and exc.dst is None
        assert exc.retransmissions == 0
        assert exc.rebound is False

    def test_copy_failed_defaults_to_copyto(self):
        assert CopyFailedError("boom").op == "copyto"

    def test_migration_error_context(self):
        exc = MigrationError("no luck", lhid=0x40, host="ws1", attempt=2)
        assert exc.lhid == 0x40
        assert exc.host == "ws1"
        assert exc.attempt == 2

    def test_invariant_violation_copies_its_detail(self):
        detail = {"lhid": 5}
        exc = InvariantViolation("bad", invariant="at-most-once",
                                 at_us=99, detail=detail)
        detail["lhid"] = 6  # caller mutation must not alias through
        assert exc.detail == {"lhid": 5}
        assert exc.invariant == "at-most-once"
        assert exc.at_us == 99

    @pytest.mark.parametrize("exc_type", [
        SendTimeoutError, CopyFailedError, MigrationError,
        InvariantViolation,
    ])
    def test_fault_exceptions_are_repro_errors(self, exc_type):
        assert issubclass(exc_type, ReproError)
        if exc_type in (SendTimeoutError, CopyFailedError):
            assert issubclass(exc_type, IpcError)
