"""Unit tests for the composable fault models and the fault plane."""

import pytest

from repro.faults.models import (
    BurstDropFault,
    CorruptFault,
    DeliveryPlan,
    DropFault,
    DuplicateFault,
    FaultPlane,
    LossAdapter,
    ReorderFault,
)
from repro.net.loss import BernoulliLoss
from repro.sim import Simulator


def _plan_once(sim, *models):
    plane = FaultPlane(list(models))
    return plane.plan(sim, packet=None), plane


class TestDeliveryPlan:
    def test_fresh_plan_delivers(self):
        plan = DeliveryPlan()
        assert not plan.dropped
        assert not plan.corrupted
        assert plan.duplicates == 0
        assert plan.delay_us == 0
        assert not plan.discarded

    def test_discarded_is_drop_or_corrupt(self):
        plan = DeliveryPlan()
        plan.dropped = True
        assert plan.discarded
        plan = DeliveryPlan()
        plan.corrupted = True
        assert plan.discarded


class TestRateValidation:
    @pytest.mark.parametrize("factory", [
        lambda: DropFault(-0.1),
        lambda: DropFault(1.5),
        lambda: DuplicateFault(2.0),
        lambda: ReorderFault(-1.0),
        lambda: CorruptFault(1.01),
        lambda: BurstDropFault(p_good_to_bad=3.0),
        lambda: BurstDropFault(p_bad_to_good=-0.5),
    ])
    def test_rates_outside_unit_interval_rejected(self, factory):
        with pytest.raises(ValueError):
            factory()

    def test_reorder_needs_positive_delay(self):
        with pytest.raises(ValueError):
            ReorderFault(0.5, max_delay_us=0)


class TestIndividualModels:
    def test_drop_rate_one_always_drops(self):
        sim = Simulator(seed=1)
        plan, plane = _plan_once(sim, DropFault(1.0))
        assert plan.dropped and plan.discarded
        assert plane.stats()["dropped"] == 1

    def test_drop_rate_zero_never_drops(self):
        sim = Simulator(seed=1)
        for _ in range(50):
            plan, _ = _plan_once(sim, DropFault(0.0))
            assert not plan.discarded

    def test_corrupt_counted_separately_from_drop(self):
        sim = Simulator(seed=1)
        plan, plane = _plan_once(sim, CorruptFault(1.0))
        assert plan.corrupted and not plan.dropped
        assert plan.discarded  # NIC discards a bad-checksum frame
        stats = plane.stats()
        assert stats["corrupted"] == 1
        assert stats["dropped"] == 0

    def test_duplicate_sets_copy_and_delay(self):
        sim = Simulator(seed=1)
        plan, plane = _plan_once(sim, DuplicateFault(1.0, delay_us=700))
        assert plan.duplicates == 1
        assert plan.dup_delay_us == 700
        assert not plan.discarded
        assert plane.stats()["duplicated"] == 1

    def test_reorder_delay_bounded(self):
        sim = Simulator(seed=3)
        for _ in range(30):
            plan, _ = _plan_once(sim, ReorderFault(1.0, max_delay_us=2_000))
            assert 1 <= plan.delay_us <= 2_000

    def test_burst_drops_are_correlated_runs(self):
        # Force the chain into the bad state and keep it there: every
        # delivery after the first transition is dropped.
        sim = Simulator(seed=1)
        model = BurstDropFault(p_good_to_bad=1.0, p_bad_to_good=0.0)
        plane = FaultPlane([model])
        verdicts = [plane.plan(sim, packet=None).dropped for _ in range(10)]
        assert all(verdicts)

    def test_burst_recovers(self):
        sim = Simulator(seed=1)
        model = BurstDropFault(p_good_to_bad=0.0, p_bad_to_good=1.0)
        model._bad = True  # start mid-burst
        plane = FaultPlane([model])
        assert not plane.plan(sim, packet=None).dropped


class TestPipelineComposition:
    def test_models_skip_already_discarded_frames(self):
        # A dropped frame cannot also be duplicated/reordered/corrupted.
        sim = Simulator(seed=1)
        plan, plane = _plan_once(
            sim, DropFault(1.0), DuplicateFault(1.0), ReorderFault(1.0),
            CorruptFault(1.0),
        )
        assert plan.dropped
        assert plan.duplicates == 0
        assert plan.delay_us == 0
        assert not plan.corrupted
        stats = plane.stats()
        assert stats == {"dropped": 1, "corrupted": 0, "duplicated": 0,
                         "reordered": 0}

    def test_add_returns_self_for_chaining(self):
        plane = FaultPlane()
        assert plane.add(DropFault(0.1)).add(CorruptFault(0.1)) is plane
        assert len(plane.models) == 2

    def test_legacy_drops_interface_matches_plan(self):
        sim_a = Simulator(seed=7)
        sim_b = Simulator(seed=7)
        plane_a = FaultPlane([DropFault(0.3), CorruptFault(0.2)])
        plane_b = FaultPlane([DropFault(0.3), CorruptFault(0.2)])
        for _ in range(100):
            assert plane_a.drops(sim_a, None) == \
                plane_b.plan(sim_b, None).discarded

    def test_loss_adapter_wraps_legacy_model(self):
        sim = Simulator(seed=1)
        plan, plane = _plan_once(sim, LossAdapter(BernoulliLoss(1.0)))
        assert plan.dropped
        assert plane.stats()["dropped"] == 1

    def test_counters_accumulate_without_metrics(self):
        # The plain-int counters are always on, registry or not.
        sim = Simulator(seed=5)
        plane = FaultPlane([DropFault(0.5)])
        n = 200
        for _ in range(n):
            plane.plan(sim, packet=None)
        assert 0 < plane.dropped < n

    def test_metrics_mirroring_when_enabled(self):
        sim = Simulator(seed=5)
        sim.metrics.enable()
        plane = FaultPlane([DropFault(1.0)])
        plane.bind_metrics(sim.metrics)
        plane.plan(sim, packet=None)
        assert sim.metrics.counter("faults.dropped").value == 1
