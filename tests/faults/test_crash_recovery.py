"""Crash schedules, NIC outages, and the cluster supervisor's
evict-and-scrub recovery path."""

from repro.cluster import (
    build_cluster,
    install_cluster_supervisor,
)
from repro.faults.schedule import (
    CrashEvent,
    CrashSchedule,
    OutageEvent,
    OutageSchedule,
)

from tests.helpers import BareCluster


class TestBindingCacheScrubbing:
    def test_invalidate_address_removes_every_binding_to_it(self):
        cluster = BareCluster(n=3)
        a, b, c = cluster.stations
        cache = a.kernel.binding_cache
        cache.learn(101, b.address)
        cache.learn(102, b.address)
        cache.learn(103, c.address)
        assert cache.invalidate_address(b.address) == 2
        assert cache.lookup(101) is None
        assert cache.lookup(102) is None
        assert cache.lookup(103) == c.address

    def test_invalidate_address_with_no_bindings_is_a_noop(self):
        cluster = BareCluster(n=2)
        a, b = cluster.stations
        epoch = a.kernel.binding_cache.epoch
        assert a.kernel.binding_cache.invalidate_address(b.address) == 0
        assert a.kernel.binding_cache.epoch == epoch

    def test_refresh_kill_switch_freezes_existing_bindings(self):
        cluster = BareCluster(n=3)
        a, b, c = cluster.stations
        cache = a.kernel.binding_cache
        cache.learn(5, b.address)
        cache.refresh_enabled = False
        cache.learn(5, c.address)  # a move: refused
        assert cache.lookup(5) == b.address
        cache.learn(6, c.address)  # an insert: still allowed
        assert cache.lookup(6) == c.address
        cache.refresh_enabled = True
        cache.learn(5, c.address)
        assert cache.lookup(5) == c.address

    def test_learning_a_move_bumps_the_epoch_refresh_does_not(self):
        cluster = BareCluster(n=3)
        a, b, c = cluster.stations
        cache = a.kernel.binding_cache
        cache.learn(5, b.address)
        epoch = cache.epoch
        cache.learn(5, b.address)  # same address: timestamp refresh only
        assert cache.epoch == epoch
        cache.learn(5, c.address)  # the logical host moved
        assert cache.epoch > epoch


class TestCrashSchedule:
    def test_crash_then_reboot_at_scheduled_times(self):
        cluster = build_cluster(n_workstations=2, seed=0)
        schedule = CrashSchedule([
            CrashEvent(at_us=100_000, host="ws1", down_us=200_000),
        ]).install(cluster)
        cluster.run(until_us=500_000)
        assert schedule.log == [
            (100_000, "ws1", "crash"),
            (300_000, "ws1", "reboot"),
        ]
        assert cluster.station("ws1").kernel.alive

    def test_crash_without_down_us_stays_down(self):
        cluster = build_cluster(n_workstations=2, seed=0)
        schedule = CrashSchedule([
            CrashEvent(at_us=100_000, host="ws1"),
        ]).install(cluster)
        cluster.run(until_us=2_000_000)
        assert schedule.log == [(100_000, "ws1", "crash")]
        assert not cluster.station("ws1").kernel.alive

    def test_overlapping_crashes_do_not_double_kill(self):
        cluster = build_cluster(n_workstations=2, seed=0)
        schedule = CrashSchedule([
            CrashEvent(at_us=100_000, host="ws1", down_us=500_000),
            CrashEvent(at_us=150_000, host="ws1", down_us=500_000),
        ]).install(cluster)
        cluster.run(until_us=1_000_000)
        # The second event found ws1 already down and did nothing.
        assert [k for _, _, k in schedule.log] == ["crash", "reboot"]


class TestOutageSchedule:
    def test_nic_leaves_and_rejoins_the_segment(self):
        cluster = build_cluster(n_workstations=2, seed=0)
        schedule = OutageSchedule([
            OutageEvent(at_us=100_000, host="ws1", duration_us=300_000),
        ]).install(cluster)
        cluster.run(until_us=250_000)
        assert cluster.station("ws1").nic.ethernet is None
        cluster.run(until_us=600_000)
        assert cluster.station("ws1").nic.ethernet is cluster.net
        assert [k for _, _, k in schedule.log] == ["nic-down", "nic-up"]

    def test_host_crashed_during_outage_stays_off_the_wire(self):
        cluster = build_cluster(n_workstations=2, seed=0)
        schedule = OutageSchedule([
            OutageEvent(at_us=100_000, host="ws1", duration_us=300_000),
        ]).install(cluster)
        cluster.sim.schedule(
            200_000, lambda: cluster.station("ws1").crash()
        )
        cluster.run(until_us=600_000)
        assert [k for _, _, k in schedule.log] == ["nic-down"]


class TestClusterSupervisor:
    def test_crash_is_detected_evicted_and_scrubbed(self):
        cluster = build_cluster(n_workstations=3, seed=0)
        supervisor = install_cluster_supervisor(
            cluster, probe_interval_us=100_000
        )
        victim = cluster.station("ws2")
        # Plant bindings on the survivors that point at the victim.
        cluster.station("ws0").kernel.binding_cache.learn(77, victim.address)
        cluster.station("ws1").kernel.binding_cache.learn(77, victim.address)
        victim.crash()
        cluster.run(until_us=300_000)
        assert [host for _, host in supervisor.evictions] == ["ws2"]
        assert supervisor.bindings_scrubbed >= 2
        assert cluster.station("ws0").kernel.binding_cache.lookup(77) is None
        assert cluster.station("ws1").kernel.binding_cache.lookup(77) is None

    def test_reboot_clears_the_eviction_so_a_second_crash_re_evicts(self):
        cluster = build_cluster(n_workstations=2, seed=0)
        supervisor = install_cluster_supervisor(
            cluster, probe_interval_us=100_000
        )
        cluster.station("ws1").crash()
        cluster.run(until_us=300_000)
        cluster.reboot_workstation("ws1")
        cluster.run(until_us=600_000)
        cluster.station("ws1").crash()
        cluster.run(until_us=900_000)
        assert [host for _, host in supervisor.evictions] == ["ws1", "ws1"]

    def test_eviction_is_mirrored_into_metrics(self):
        cluster = build_cluster(n_workstations=2, seed=0)
        cluster.sim.metrics.enable()
        install_cluster_supervisor(cluster, probe_interval_us=100_000)
        cluster.station("ws1").crash()
        cluster.run(until_us=300_000)
        assert cluster.sim.metrics.counter(
            "cluster.evictions", "ws1"
        ).value == 1

    def test_stopped_supervisor_stops_probing(self):
        cluster = build_cluster(n_workstations=2, seed=0)
        supervisor = install_cluster_supervisor(
            cluster, probe_interval_us=100_000
        )
        cluster.run(until_us=250_000)
        probes = supervisor.probes
        supervisor.stop()
        cluster.station("ws1").crash()
        cluster.run(until_us=800_000)
        assert supervisor.probes == probes
        assert supervisor.evictions == []
