"""Tests for the GetReplies (V GetReply) facility."""

import pytest

from repro.ipc import Message
from repro.kernel import Delay, GetReplies, Receive, Reply, Send
from repro.kernel.ids import Pid

from tests.helpers import BareCluster


def make_group_world(n_members=3):
    cluster = BareCluster(n=n_members + 1)
    group = Pid(0xFFFF, 0x0070 | 0x8000)

    def member(tag):
        def body():
            while True:
                sender, msg = yield Receive()
                yield Reply(sender, msg.replying(who=tag))
        return body

    for i, ws in enumerate(cluster.stations[1:]):
        _, pcb = cluster.spawn_program(ws, member(i)(), name=f"m{i}")
        ws.kernel.groups.join(group, pcb.pid)
    return cluster, group


def test_get_replies_collects_stragglers():
    cluster, group = make_group_world(3)
    got = {}

    def client():
        first = yield Send(group, Message("query"))
        got["first"] = first["who"]
        yield Delay(1_000_000)  # let the other members answer
        extras = yield GetReplies()
        got["all"] = sorted(msg["who"] for _, msg in extras)

    cluster.spawn_program(cluster.stations[0], client(), name="client")
    cluster.run(until_us=10_000_000)
    assert got["first"] in {0, 1, 2}
    # Every member's reply was retained, including the winner's.
    assert got["all"] == [0, 1, 2]


def test_get_replies_carries_replier_pids():
    cluster, group = make_group_world(2)
    got = {}

    def client():
        yield Send(group, Message("query"))
        yield Delay(1_000_000)
        extras = yield GetReplies()
        got["repliers"] = {pid for pid, _ in extras}

    cluster.spawn_program(cluster.stations[0], client(), name="client")
    cluster.run(until_us=10_000_000)
    assert len(got["repliers"]) == 2
    assert all(isinstance(pid, Pid) for pid in got["repliers"])


def test_get_replies_without_group_send_is_empty():
    cluster, group = make_group_world(1)
    got = {}

    def client():
        got["extras"] = yield GetReplies()

    cluster.spawn_program(cluster.stations[0], client(), name="client")
    cluster.run(until_us=5_000_000)
    assert got["extras"] == []


def test_host_selection_observes_multiple_candidates():
    """The paper: 'Typically, the client receives several responses to
    the request' -- observable through the program-level API."""
    from repro.cluster import build_cluster
    from repro.execution import ProgramRegistry
    from repro.kernel.ids import PROGRAM_MANAGER_GROUP

    cluster = build_cluster(n_workstations=5, registry=ProgramRegistry())
    got = {}

    def session(ctx):
        yield Send(PROGRAM_MANAGER_GROUP, Message("find-candidates",
                                                  memory_needed=0))
        yield Delay(1_000_000)
        extras = yield GetReplies()
        got["hosts"] = sorted(msg["host"] for _, msg in extras)

    cluster.spawn_session(cluster.workstations[0], session)
    cluster.run(until_us=10_000_000)
    # ws1..ws4 all answered (broadcasts do not loop back to ws0).
    assert got["hosts"] == ["ws1", "ws2", "ws3", "ws4"]
