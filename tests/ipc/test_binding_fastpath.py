"""Binding-cache epoch tracking and the transport's memoized-route
fast path (counters, invalidation, trajectory identity)."""

from repro._fastpath import FASTPATH
from repro.cluster import build_cluster
from repro.execution.api import query_host_by_name
from repro.ipc.binding_cache import BindingCache
from repro.net.addresses import workstation_address
from repro.obs.metrics import MetricsRegistry
from repro.sim import Simulator
from repro.workloads import standard_registry


class TestEpoch:
    def make(self):
        return BindingCache(Simulator(seed=0))

    def test_learning_a_new_binding_bumps_epoch(self):
        cache = self.make()
        e0 = cache.epoch
        cache.learn(7, workstation_address(1))
        assert cache.epoch == e0 + 1

    def test_same_address_refresh_keeps_epoch(self):
        # Every incoming request refreshes its sender's binding; if that
        # bumped the epoch, the route memo would never survive a reply.
        cache = self.make()
        cache.learn(7, workstation_address(1))
        e = cache.epoch
        cache.learn(7, workstation_address(1))
        assert cache.epoch == e

    def test_rebinding_to_a_new_address_bumps_epoch(self):
        # The migration case: the logical host moved hosts.
        cache = self.make()
        cache.learn(7, workstation_address(1))
        e = cache.epoch
        cache.learn(7, workstation_address(2))
        assert cache.epoch == e + 1
        assert cache.lookup(7) == workstation_address(2)

    def test_invalidate_bumps_epoch(self):
        cache = self.make()
        cache.learn(7, workstation_address(1))
        e = cache.epoch
        cache.invalidate(7)
        assert cache.epoch == e + 1
        cache.invalidate(7)  # absent: no change
        assert cache.epoch == e + 1

    def test_topology_change_bumps_epoch(self):
        cache = self.make()
        e = cache.epoch
        cache.note_topology_change()
        assert cache.epoch == e + 1


class TestCounters:
    def test_fast_hit_parity_with_cached_lookup(self):
        cache = BindingCache(Simulator(seed=0))
        cache.note_fast_hit(cached=True)
        assert (cache.fast_hits, cache.hits) == (1, 1)
        cache.note_fast_hit(cached=False)  # memoized local route
        assert (cache.fast_hits, cache.hits) == (2, 1)

    def test_metrics_surface_in_registry(self):
        registry = MetricsRegistry()
        registry.enable()
        cache = BindingCache(Simulator(seed=0))
        cache.bind_metrics(registry, "ws9")
        cache.learn(1, workstation_address(1))
        cache.lookup(1)
        cache.lookup(2)
        cache.note_fast_hit()
        per_host = registry.snapshot()["per_host"]["ws9"]
        assert per_host["ipc.binding_hits"] == 2  # lookup + fast-hit parity
        assert per_host["ipc.binding_misses"] == 1
        assert per_host["ipc.binding_fast_hits"] == 1


def _run_name_queries(route_cache: bool, count=8, seed=3):
    """A cluster session that resolves ws1's program manager once (group
    multicast), then sends ``count`` requests straight to its pid --
    repeated pid-directed sends over a stable binding, the route memo's
    target case.  Returns (trajectory, total fast hits, total lookups)."""
    from repro.ipc.messages import Message
    from repro.kernel.process import Send

    old = FASTPATH.route_cache
    FASTPATH.route_cache = route_cache
    try:
        cluster = build_cluster(
            n_workstations=3, registry=standard_registry(scale=0.2),
            seed=seed,
        )
        sim = cluster.sim
        replies = []

        def session(ctx):
            pm = yield from query_host_by_name("ws1")
            for _ in range(count):
                reply = yield Send(
                    pm, Message("query-host", hostname="ws1")
                )
                replies.append(str(reply["pm"]))

        cluster.spawn_session(cluster.workstations[0], session)
        while len(replies) < count and sim.peek() is not None:
            sim.run(until_us=sim.now + 100_000)
        fast = sum(w.kernel.binding_cache.fast_hits
                   for w in cluster.workstations)
        lookups = sum(w.kernel.binding_cache.hits
                      + w.kernel.binding_cache.misses
                      for w in cluster.workstations)
        return (sim.now, sim.event_count, cluster.net.packets_sent,
                tuple(replies)), fast, lookups
    finally:
        FASTPATH.route_cache = old


class TestRouteMemoIntegration:
    def test_memo_engages_on_repeated_sends(self):
        _, fast, _ = _run_name_queries(route_cache=True)
        assert fast > 0

    def test_trajectory_and_counters_identical_with_memo_off(self):
        on_traj, _, on_lookups = _run_name_queries(route_cache=True)
        off_traj, off_fast, off_lookups = _run_name_queries(route_cache=False)
        assert off_fast == 0
        assert on_traj == off_traj
        # Counter parity: the memo replays exactly the lookups the slow
        # path would have performed.
        assert on_lookups == off_lookups
