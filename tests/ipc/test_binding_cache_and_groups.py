"""Unit tests for the binding cache and group tables."""

import pytest

from repro.errors import IpcError
from repro.ipc import BindingCache, GroupTable
from repro.kernel.ids import Pid
from repro.net.addresses import workstation_address
from repro.sim import Simulator


class TestBindingCache:
    def make(self):
        sim = Simulator()
        return sim, BindingCache(sim)

    def test_lookup_miss_then_hit(self):
        sim, cache = self.make()
        assert cache.lookup(5) is None
        cache.learn(5, workstation_address(0))
        assert cache.lookup(5) == workstation_address(0)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_learn_refreshes_binding(self):
        sim, cache = self.make()
        cache.learn(5, workstation_address(0))
        cache.learn(5, workstation_address(1))
        assert cache.lookup(5) == workstation_address(1)

    def test_invalidate(self):
        sim, cache = self.make()
        cache.learn(5, workstation_address(0))
        cache.invalidate(5)
        assert cache.lookup(5) is None
        assert cache.invalidations == 1
        cache.invalidate(5)  # idempotent
        assert cache.invalidations == 1

    def test_entry_age(self):
        sim, cache = self.make()
        cache.learn(5, workstation_address(0))
        sim.run(until_us=1_000)
        assert cache.entry_age(5) == 1_000
        assert cache.entry_age(99) is None

    def test_known_lhids_sorted(self):
        sim, cache = self.make()
        for lhid in (9, 3, 7):
            cache.learn(lhid, workstation_address(0))
        assert cache.known_lhids() == [3, 7, 9]

    def test_len_and_contains(self):
        sim, cache = self.make()
        cache.learn(1, workstation_address(0))
        assert len(cache) == 1
        assert 1 in cache
        assert 2 not in cache


class TestGroupTable:
    def test_join_and_members_sorted(self):
        table = GroupTable()
        group = Pid(0xFFFF, 0x8001)
        table.join(group, Pid(2, 1))
        table.join(group, Pid(1, 1))
        assert table.local_members(group) == [Pid(1, 1), Pid(2, 1)]

    def test_join_requires_group_id(self):
        table = GroupTable()
        with pytest.raises(IpcError):
            table.join(Pid(1, 1), Pid(2, 2))

    def test_member_must_be_process_id(self):
        table = GroupTable()
        with pytest.raises(IpcError):
            table.join(Pid(0xFFFF, 0x8001), Pid(0xFFFF, 0x8002))

    def test_leave(self):
        table = GroupTable()
        group = Pid(0xFFFF, 0x8001)
        table.join(group, Pid(1, 1))
        table.leave(group, Pid(1, 1))
        assert table.local_members(group) == []
        table.leave(group, Pid(1, 1))  # idempotent

    def test_leave_all(self):
        table = GroupTable()
        g1, g2 = Pid(0xFFFF, 0x8001), Pid(0xFFFF, 0x8002)
        member = Pid(1, 1)
        table.join(g1, member)
        table.join(g2, member)
        table.join(g2, Pid(1, 2))
        table.leave_all(member)
        assert table.local_members(g1) == []
        assert table.local_members(g2) == [Pid(1, 2)]

    def test_groups_of(self):
        table = GroupTable()
        g1, g2 = Pid(0xFFFF, 0x8001), Pid(0xFFFF, 0x8002)
        member = Pid(1, 1)
        table.join(g1, member)
        table.join(g2, member)
        assert table.groups_of(member) == sorted([g1, g2])
        assert table.groups_of(Pid(9, 9)) == []

    def test_len_counts_groups(self):
        table = GroupTable()
        table.join(Pid(0xFFFF, 0x8001), Pid(1, 1))
        table.join(Pid(0xFFFF, 0x8002), Pid(1, 1))
        assert len(table) == 2
