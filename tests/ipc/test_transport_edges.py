"""Edge-case tests for transport misuse and rarely-hit paths."""

import pytest

from repro.errors import IpcError, KernelError
from repro.ipc import Message
from repro.kernel import Compute, Receive, Reply, Send
from repro.kernel.ids import PROGRAM_MANAGER_GROUP, Pid
from repro.kernel.process import Decline, Forward

from tests.helpers import BareCluster


class TestMisuse:
    def test_reply_without_pending_message_faults_program(self):
        cluster = BareCluster(n=1)
        cluster.sim.strict = False
        ws = cluster.stations[0]

        def bad_server():
            yield Reply(Pid(0x10, 0x42), Message("oops"))

        _, pcb = cluster.spawn_program(ws, bad_server(), name="bad")
        cluster.run()
        assert pcb in ws.kernel.faulted

    def test_decline_without_pending_message_faults_program(self):
        cluster = BareCluster(n=1)
        cluster.sim.strict = False
        ws = cluster.stations[0]

        def bad_server():
            yield Decline(Pid(0x10, 0x42))

        _, pcb = cluster.spawn_program(ws, bad_server(), name="bad")
        cluster.run()
        assert pcb in ws.kernel.faulted

    def test_forward_without_pending_message_faults_program(self):
        cluster = BareCluster(n=1)
        cluster.sim.strict = False
        ws = cluster.stations[0]

        def bad_server():
            yield Forward(Pid(0x10, 0x42), Message("x"), Pid(0x10, 0x43))

        _, pcb = cluster.spawn_program(ws, bad_server(), name="bad")
        cluster.run()
        assert pcb in ws.kernel.faulted

    def test_copy_to_global_group_rejected(self):
        cluster = BareCluster(n=1)
        ws = cluster.stations[0]
        lh = ws.kernel.create_logical_host()
        space = ws.kernel.allocate_space(lh, 4096)

        def idle():
            yield Compute(10)

        pcb = ws.kernel.create_process(lh, idle(), name="p")
        with pytest.raises(IpcError):
            ws.kernel.ipc.copy_to(pcb, PROGRAM_MANAGER_GROUP, space.pages)
        with pytest.raises(IpcError):
            ws.kernel.ipc.copy_from(pcb, PROGRAM_MANAGER_GROUP, [0])

    def test_double_reply_faults_program(self):
        cluster = BareCluster(n=1)
        cluster.sim.strict = False
        ws = cluster.stations[0]

        def double_replier():
            sender, msg = yield Receive()
            yield Reply(sender, msg.replying(ok=1))
            yield Reply(sender, msg.replying(ok=2))

        lh, server = cluster.spawn_program(ws, double_replier(), name="srv")
        got = []

        def client():
            reply = yield Send(server.pid, Message("ping"))
            got.append(reply["ok"])

        cluster.spawn_program(ws, client(), lh=lh, name="client")
        cluster.run(until_us=10_000_000)
        assert got == [1]
        assert server in ws.kernel.faulted

    def test_unknown_instruction_faults_program(self):
        cluster = BareCluster(n=1)
        cluster.sim.strict = False
        ws = cluster.stations[0]

        def weird():
            yield object()

        _, pcb = cluster.spawn_program(ws, weird(), name="weird")
        cluster.run()
        # The scheduler records the fault rather than wedging the CPU.
        assert not pcb.alive


class TestGroupReplies:
    def test_group_replies_empty_without_group_send(self):
        cluster = BareCluster(n=1)
        ws = cluster.stations[0]

        def idle():
            yield Compute(10)

        _, pcb = cluster.spawn_program(ws, idle(), name="p")
        assert ws.kernel.ipc.group_replies(pcb) == []


class TestCounters:
    def test_transport_counters_accumulate(self):
        cluster = BareCluster(n=2)
        a, b = cluster.stations

        def echo():
            while True:
                sender, msg = yield Receive()
                yield Reply(sender, msg.replying(ok=True))

        _, server = cluster.spawn_program(b, echo(), name="srv")

        def client():
            for _ in range(3):
                yield Send(server.pid, Message("ping"))

        cluster.spawn_program(a, client(), name="client")
        cluster.run(until_us=10_000_000)
        assert a.kernel.ipc.sends == 3
        assert a.kernel.ipc.remote_requests >= 3
        assert b.kernel.ipc.frozen_checks >= 3

    def test_local_requests_counted_separately(self):
        cluster = BareCluster(n=1)
        ws = cluster.stations[0]

        def echo():
            sender, msg = yield Receive()
            yield Reply(sender, msg.replying(ok=True))

        lh, server = cluster.spawn_program(ws, echo(), name="srv")

        def client():
            yield Send(server.pid, Message("ping"))

        cluster.spawn_program(ws, client(), lh=lh, name="client")
        cluster.run(until_us=5_000_000)
        assert ws.kernel.ipc.local_requests >= 1
        assert ws.kernel.ipc.remote_requests == 0


class TestContactTracking:
    def test_contacted_pids_accumulate_per_logical_host(self):
        cluster = BareCluster(n=2)
        a, b = cluster.stations

        def echo():
            while True:
                sender, msg = yield Receive()
                yield Reply(sender, msg.replying(ok=True))

        _, server = cluster.spawn_program(b, echo(), name="srv")
        lh = None

        def client():
            yield Send(server.pid, Message("ping"))

        lh, _ = cluster.spawn_program(a, client(), name="client")
        cluster.run(until_us=5_000_000)
        assert server.pid in lh.contacted_pids


class TestFrozenCopyTarget:
    def test_copyto_into_frozen_host_defers_until_unfreeze(self):
        """Paper footnote 5: a CopyTo to a process is a request message,
        so a frozen target defers it; the sender neither fails nor
        corrupts the frozen copy mid-migration."""
        from repro.config import PAGE_SIZE
        from repro.kernel import CopyToInstr, Delay

        cluster = BareCluster(n=2)
        a, b = cluster.stations

        def idle():
            yield Delay(3_600_000_000)

        dst_lh, dst_pcb = cluster.spawn_program(
            b, idle(), space_bytes=PAGE_SIZE * 8, name="dst"
        )
        src_lh = a.kernel.create_logical_host()
        src_space = a.kernel.allocate_space(src_lh, PAGE_SIZE * 8, name="src")
        src_space.load_image()
        done = []

        def copier():
            n = yield CopyToInstr(dst_pcb.pid, src_space.pages)
            done.append((cluster.sim.now, n))

        b.kernel.freeze_logical_host(dst_lh)
        cluster.spawn_program(a, copier(), name="copier")
        cluster.run(until_us=2_000_000)
        assert done == []  # frozen: the copy is pending, not applied
        frozen_versions = [p.version for p in dst_pcb.space.pages]
        assert all(v == 0 for v in frozen_versions)  # untouched while frozen
        unfroze_at = cluster.sim.now
        b.kernel.unfreeze_logical_host(dst_lh)
        cluster.run(until_us=60_000_000)
        assert done and done[0][0] > unfroze_at
        assert dst_pcb.space.identical_to(src_space)
