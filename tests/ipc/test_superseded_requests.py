"""Regression: a sender that timed out and moved on leaves its old
request queued at a busy server; the server's later replies must match
records in FIFO order, not explode or cross wires."""

import pytest

from repro.errors import SendTimeoutError
from repro.ipc import Message
from repro.kernel import Compute, Receive, Reply, Send

from tests.helpers import BareCluster


class DropReplyPendings:
    """Scripted loss: suppress every reply-pending packet so a slow
    server's client times out instead of being kept alive."""

    def __init__(self):
        self.dropped = 0

    def drops(self, sim, packet) -> bool:
        if packet.kind == "reply-pending":
            self.dropped += 1
            return True
        return False


def test_superseded_request_replies_resolve_fifo():
    loss = DropReplyPendings()
    cluster = BareCluster(n=2, loss=loss)
    a, b = cluster.stations
    served = []

    def slow_server():
        # Busy beyond the first send's retry horizon (~2.2 s) but within
        # the second's, then serve whatever queued.
        yield Compute(3_500_000)
        while True:
            sender, msg = yield Receive()
            served.append(msg["n"])
            yield Reply(sender, msg.replying(n=msg["n"]))

    _, server = cluster.spawn_program(b, slow_server(), name="server")
    events = []

    def client():
        try:
            reply = yield Send(server.pid, Message("req", n=1))
            events.append(("ok", reply["n"]))
        except SendTimeoutError:
            events.append(("timeout", 1))
        # Move on and send a second request regardless.
        reply = yield Send(server.pid, Message("req", n=2))
        events.append(("ok", reply["n"]))

    cluster.spawn_program(a, client(), name="client")
    cluster.run(until_us=120_000_000)
    # The first send timed out (its reply-pendings were all suppressed)...
    assert ("timeout", 1) in events
    # ...the second completed with its own reply, never the stale one.
    assert ("ok", 2) in events
    # The server processed both queued requests in arrival order and
    # nothing crashed when it replied to the abandoned first request.
    assert served == [1, 2]
    assert not b.kernel.faulted
    assert cluster.sim.failures == []
    assert loss.dropped > 0
