"""Unit tests for IPC messages."""

import pytest

from repro.ipc import Message
from repro.ipc.messages import MESSAGE_BYTES


def test_fields_accessible_as_mapping():
    msg = Message("greet", who="world", n=3)
    assert msg["who"] == "world"
    assert msg.get("n") == 3
    assert msg.get("absent") is None
    assert set(msg) == {"who", "n"}
    assert len(msg) == 2


def test_kind_tag():
    assert Message("x").kind == "x"


def test_wire_bytes_includes_segment():
    assert Message("x").wire_bytes == MESSAGE_BYTES
    assert Message("x", extra_bytes=100).wire_bytes == MESSAGE_BYTES + 100


def test_negative_segment_rejected():
    with pytest.raises(ValueError):
        Message("x", extra_bytes=-1)


def test_immutable():
    msg = Message("x", a=1)
    with pytest.raises(AttributeError):
        msg.kind = "y"


def test_equality():
    assert Message("x", a=1) == Message("x", a=1)
    assert Message("x", a=1) != Message("x", a=2)
    assert Message("x") != Message("y")


def test_replying_convention():
    msg = Message("query-load")
    reply = msg.replying(ready=2)
    assert reply.kind == "query-load-reply"
    assert reply["ready"] == 2
    custom = msg.replying(kind="load", ready=1)
    assert custom.kind == "load"


def test_hashable():
    assert hash(Message("x", a=1)) == hash(Message("x", a=1))
