"""Tests for the bulk-transfer data plane overhaul: burst pacing and
page-granular selective retransmission under bursts.

``COPY_PLANE.burst_pacing`` makes the copy engine emit one K-page blast
frame per pacing timer instead of K per-page frames.  The stream must
keep the calibrated 3 s/MB rate, deliver the same page versions, and --
critically -- recover a frame lost mid-burst by re-sending only the
missing pages, not the whole blast.
"""

import pytest

from repro.config import PAGE_SIZE
from repro.kernel import CopyFromInstr, CopyToInstr, Delay
from repro.net.loss import LossModel

from tests.helpers import apply_toggles, make_cluster


@pytest.fixture
def burst_pacing():
    """Enable burst pacing for the test (the conftest hygiene fixture
    restores the default after)."""
    apply_toggles({"burst_pacing": True})


class DropNthOfKind(LossModel):
    """Deterministically drop the Nth delivery of one packet kind, and
    tally every delivery attempt by kind (the test's observation point)."""

    def __init__(self, kind: str, nth: int):
        self.kind = kind
        self.nth = nth
        self.seen = 0
        self.counts = {}

    def drops(self, sim, packet) -> bool:
        self.counts[packet.kind] = self.counts.get(packet.kind, 0) + 1
        if packet.kind == self.kind:
            self.seen += 1
            if self.seen == self.nth:
                return True
        return False


def _copy_pages(cluster, n_pages, collect_time=False):
    """Run one remote CopyTo of ``n_pages`` and return (dst_space, us)."""
    a, b = cluster.stations

    def idle():
        yield Delay(600_000_000)

    dst_lh, dst_pcb = cluster.spawn_program(
        b, idle(), space_bytes=PAGE_SIZE * n_pages, name="dst"
    )
    src_lh = a.kernel.create_logical_host()
    src_space = a.kernel.allocate_space(
        src_lh, PAGE_SIZE * n_pages, name="src"
    )
    src_space.load_image()
    took = []

    def copier():
        start = cluster.sim.now
        yield CopyToInstr(dst_pcb.pid, src_space.pages)
        took.append(cluster.sim.now - start)

    cluster.spawn_program(a, copier(), lh=src_lh, name="copier")
    cluster.run(until_us=600_000_000)
    assert took, "copy never completed"
    return src_space, dst_pcb.space, took[0]


def test_burst_stream_delivers_identical_pages(burst_pacing):
    cluster = make_cluster(2)
    src_space, dst_space, _ = _copy_pages(cluster, 48)
    assert dst_space.identical_to(src_space)
    copies = cluster.stations[0].kernel.ipc.copies
    assert copies.bursts == 3  # 48 pages / 16-page bursts
    assert copies.pacing_events == 3


def test_burst_pacing_preserves_the_3s_per_mb_rate(burst_pacing):
    cluster = make_cluster(2)
    mb_pages = (1024 * 1024) // PAGE_SIZE
    _, dst_space, took = _copy_pages(cluster, mb_pages)
    assert 2_700_000 < took < 3_400_000


def test_burst_and_per_page_streams_agree():
    """Same pages, same versions, near-identical duration either way."""
    per_page = make_cluster(2)
    src_off, dst_off, t_off = _copy_pages(per_page, 48)

    bursty = make_cluster(2, toggles={"burst_pacing": True})
    src_on, dst_on, t_on = _copy_pages(bursty, 48)

    assert dst_off.version_vector() == dst_on.version_vector()
    assert abs(t_on - t_off) < 0.02 * t_off
    assert bursty.stations[0].kernel.ipc.copies.pacing_events < \
        per_page.stations[0].kernel.ipc.copies.pacing_events / 3


def test_lost_mid_burst_frame_retransmits_only_its_pages(burst_pacing):
    """Satellite: a frame lost mid-burst NAKs at page granularity.

    48 pages go out as 3 blasts; the 2nd is dropped.  Recovery must
    re-send exactly those 16 pages as per-page ``copy-data`` frames --
    never a 4th burst -- and the destination must still converge."""
    loss = DropNthOfKind("copy-burst", 2)
    cluster = make_cluster(2, loss=loss)
    src_space, dst_space, _ = _copy_pages(cluster, 48)

    assert loss.seen >= 2, "the targeted burst frame never crossed the wire"
    assert dst_space.identical_to(src_space)
    # The original stream: exactly 3 burst frames, one of them eaten.
    assert loss.counts.get("copy-burst") == 3
    # The retransmission: the 16 pages of the lost blast, page-granular.
    assert loss.counts.get("copy-data") == 16
    # The end-of-run announcement went out twice (stream + retransmit).
    assert loss.counts.get("copy-end", 0) >= 2


def test_copyfrom_burst_reply_matches_per_page(burst_pacing):
    cluster = make_cluster(2)
    a, b = cluster.stations

    def idle():
        yield Delay(600_000_000)

    src_lh, src_pcb = cluster.spawn_program(
        b, idle(), space_bytes=PAGE_SIZE * 40, name="src"
    )
    src_pcb.space.touch_pages(range(0, 40, 2))
    got = []

    def fetcher():
        snaps = yield CopyFromInstr(src_pcb.pid, range(40))
        got.append(snaps)

    cluster.spawn_program(a, fetcher(), name="fetcher")
    cluster.run(until_us=600_000_000)
    assert len(got[0]) == 40
    assert [s.version for s in got[0]] == [1, 0] * 20
    assert cluster.stations[1].kernel.ipc.copies.bursts == 3  # 40/16 -> 3
