"""Integration-grade unit tests for the IPC transport.

These drive real process bodies on bare workstations over the simulated
Ethernet and check the V semantics the paper relies on.
"""

import pytest

from repro.errors import NoSuchProcessError, SendTimeoutError
from repro.ipc import Message
from repro.kernel import (
    Compute,
    CopyFromInstr,
    CopyToInstr,
    Delay,
    Forward,
    Priority,
    Receive,
    Reply,
    Send,
)
from repro.kernel.ids import Pid, local_kernel_server_group
from repro.net import BernoulliLoss

from tests.helpers import BareCluster


def echo_server_body(count=None):
    """Reply to each request with its payload echoed back."""
    served = 0
    while count is None or served < count:
        sender, msg = yield Receive()
        yield Reply(sender, msg.replying(echo=msg.get("payload")))
        served += 1


class TestLocalSend:
    def test_send_receive_reply_same_host(self):
        cluster = BareCluster(n=1)
        ws = cluster.stations[0]
        lh, server = cluster.spawn_program(ws, echo_server_body(1), name="server")
        got = []

        def client():
            reply = yield Send(server.pid, Message("ping", payload=42))
            got.append(reply)

        cluster.spawn_program(ws, client(), lh=lh, name="client")
        cluster.run()
        assert got and got[0]["echo"] == 42

    def test_local_rpc_takes_sub_millisecond(self):
        cluster = BareCluster(n=1)
        ws = cluster.stations[0]
        lh, server = cluster.spawn_program(ws, echo_server_body(1), name="server")
        times = []

        def client():
            start = cluster.sim.now
            yield Send(server.pid, Message("ping"))
            times.append(cluster.sim.now - start)

        cluster.spawn_program(ws, client(), lh=lh, name="client")
        cluster.run()
        assert times[0] < 5_000  # well under the remote cost

    def test_send_to_dead_process_raises(self):
        cluster = BareCluster(n=1)
        ws = cluster.stations[0]
        lh = ws.kernel.create_logical_host()
        ws.kernel.allocate_space(lh, 4096)
        caught = []

        def client():
            try:
                yield Send(Pid(lh.lhid, 0x99), Message("ping"))
            except NoSuchProcessError:
                caught.append(True)

        cluster.spawn_program(ws, client(), lh=lh, name="client")
        cluster.run()
        assert caught == [True]

    def test_messages_queue_when_server_busy(self):
        cluster = BareCluster(n=1)
        ws = cluster.stations[0]

        def slow_server():
            for _ in range(3):
                sender, msg = yield Receive()
                yield Compute(50_000)
                yield Reply(sender, msg.replying(ok=True))

        lh, server = cluster.spawn_program(ws, slow_server(), name="server")
        done = []

        def client(tag):
            yield Send(server.pid, Message("req", payload=tag))
            done.append(tag)

        for tag in ("a", "b", "c"):
            cluster.spawn_program(ws, client(tag), name=f"client-{tag}")
        cluster.run()
        assert sorted(done) == ["a", "b", "c"]


class TestRemoteSend:
    def make_pair(self, seed=0, loss=None):
        cluster = BareCluster(n=2, seed=seed, loss=loss)
        a, b = cluster.stations
        _, server = cluster.spawn_program(b, echo_server_body(), name="server")
        return cluster, a, b, server

    def test_remote_send_resolves_by_broadcast_and_delivers(self):
        cluster, a, b, server = self.make_pair()
        got = []

        def client():
            reply = yield Send(server.pid, Message("ping", payload="hi"))
            got.append(reply["echo"])

        cluster.spawn_program(a, client(), name="client")
        cluster.run(until_us=2_000_000)
        assert got == ["hi"]
        # The client's kernel learned the binding.
        assert a.kernel.binding_cache.lookup(server.pid.logical_host_id) == b.address

    def test_remote_send_costs_milliseconds(self):
        cluster, a, b, server = self.make_pair()
        times = []

        def client():
            # Prime the binding cache with a first exchange.
            yield Send(server.pid, Message("ping"))
            start = cluster.sim.now
            yield Send(server.pid, Message("ping"))
            times.append(cluster.sim.now - start)

        cluster.spawn_program(a, client(), name="client")
        cluster.run(until_us=2_000_000)
        assert times and 1_000 < times[0] < 20_000

    def test_at_most_once_under_heavy_loss(self):
        cluster, a, b, server_unused = None, None, None, None
        cluster = BareCluster(n=2, seed=3, loss=BernoulliLoss(0.4))
        a, b = cluster.stations
        served = []

        def counting_server():
            while True:
                sender, msg = yield Receive()
                served.append(msg["n"])
                yield Reply(sender, msg.replying(ok=True))

        _, server = cluster.spawn_program(b, counting_server(), name="server")
        completed = []

        def client():
            for n in range(5):
                yield Send(server.pid, Message("req", n=n))
                completed.append(n)

        cluster.spawn_program(a, client(), name="client")
        cluster.run(until_us=60_000_000)
        assert completed == [0, 1, 2, 3, 4]
        # Retransmissions happened, but the application saw each exactly once.
        assert served == [0, 1, 2, 3, 4]
        assert a.kernel.ipc.retransmissions > 0

    def test_send_to_crashed_host_times_out(self):
        cluster, a, b, server = self.make_pair()
        caught = []

        def client():
            # Prime the cache.
            yield Send(server.pid, Message("ping"))
            b.crash()
            try:
                yield Send(server.pid, Message("ping"))
            except SendTimeoutError:
                caught.append(cluster.sim.now)

        cluster.spawn_program(a, client(), name="client")
        cluster.run(until_us=60_000_000)
        assert len(caught) == 1

    def test_reply_pending_prevents_timeout_during_slow_service(self):
        """A service taking far longer than the retransmission budget must
        not abort the sender (paper §3.1)."""
        cluster = BareCluster(n=2)
        a, b = cluster.stations

        def very_slow_server():
            sender, msg = yield Receive()
            yield Compute(5_000_000)  # 5 s >> 5 x 200 ms retransmit budget
            yield Reply(sender, msg.replying(ok=True))

        _, server = cluster.spawn_program(b, very_slow_server(), name="server")
        got = []

        def client():
            reply = yield Send(server.pid, Message("big-job"))
            got.append(reply["ok"])

        cluster.spawn_program(a, client(), name="client")
        cluster.run(until_us=30_000_000)
        assert got == [True]
        assert b.kernel.ipc.reply_pendings_sent > 0

    def test_duplicate_request_after_reply_resends_retained_reply(self):
        # Force the reply packet to be lost exactly once using a scripted
        # loss model.
        class LoseNthReply:
            def __init__(self):
                self.dropped = False

            def drops(self, sim, packet):
                if packet.kind == "reply" and not self.dropped:
                    self.dropped = True
                    return True
                return False

        cluster = BareCluster(n=2, loss=LoseNthReply())
        a, b = cluster.stations
        _, server = cluster.spawn_program(b, echo_server_body(), name="server")
        got = []

        def client():
            reply = yield Send(server.pid, Message("ping", payload=1))
            got.append(reply["echo"])

        cluster.spawn_program(a, client(), name="client")
        cluster.run(until_us=10_000_000)
        assert got == [1]


class TestWellKnownLocalGroups:
    def test_kernel_server_reachable_via_own_lhid(self):
        """Paper §2: the kernel server is addressed by the program's own
        logical-host-id plus a well-known index."""
        cluster = BareCluster(n=1)
        ws = cluster.stations[0]
        got = []

        def client():
            ks = local_kernel_server_group_for_me = None
            reply = yield Send(
                local_kernel_server_group(me_lh.lhid), Message("get-time")
            )
            got.append(reply["now_us"])

        me_lh = ws.kernel.create_logical_host()
        ws.kernel.allocate_space(me_lh, 4096)
        cluster.spawn_program(ws, client(), lh=me_lh, name="client")
        cluster.run()
        assert got and got[0] > 0

    def test_kernel_server_query_load(self):
        cluster = BareCluster(n=1)
        ws = cluster.stations[0]
        got = []

        def client():
            reply = yield Send(
                local_kernel_server_group(me_lh.lhid), Message("query-load")
            )
            got.append(reply)

        me_lh = ws.kernel.create_logical_host()
        ws.kernel.allocate_space(me_lh, 4096)
        cluster.spawn_program(ws, client(), lh=me_lh, name="client")
        cluster.run()
        assert got[0]["memory_free"] > 0

    def test_remote_kernel_server_reachable_via_remote_lhid(self):
        """Addressing (remote-lhid, KS-index) reaches the *remote* host's
        kernel server: location-independent host-specific service."""
        cluster = BareCluster(n=2)
        a, b = cluster.stations
        remote_lh = b.kernel.create_logical_host()
        b.kernel.allocate_space(remote_lh, 4096)
        got = []

        def client():
            reply = yield Send(
                local_kernel_server_group(remote_lh.lhid), Message("query-load")
            )
            got.append(reply)

        cluster.spawn_program(a, client(), name="client")
        cluster.run(until_us=5_000_000)
        assert got and got[0].kind == "load"


class TestKernelServerOps:
    def test_destroy_process_via_ks(self):
        cluster = BareCluster(n=1)
        ws = cluster.stations[0]

        def victim():
            yield Delay(10_000_000)

        lh, victim_pcb = cluster.spawn_program(ws, victim(), name="victim")
        done = []

        def killer():
            reply = yield Send(
                local_kernel_server_group(me_lh.lhid),
                Message("destroy-process", pid=victim_pcb.pid),
            )
            done.append(reply.kind)

        me_lh = ws.kernel.create_logical_host()
        ws.kernel.allocate_space(me_lh, 4096)
        cluster.spawn_program(ws, killer(), lh=me_lh, name="killer")
        cluster.run(until_us=1_000_000)
        assert done == ["ok"]
        assert not victim_pcb.alive

    def test_query_process_via_ks(self):
        cluster = BareCluster(n=1)
        ws = cluster.stations[0]

        def victim():
            yield Delay(10_000_000)

        lh, victim_pcb = cluster.spawn_program(ws, victim(), name="victim")
        got = []

        def querier():
            reply = yield Send(
                local_kernel_server_group(lh.lhid),
                Message("query-process", pid=victim_pcb.pid),
            )
            got.append(reply)

        cluster.spawn_program(ws, querier(), lh=lh, name="querier")
        cluster.run(until_us=1_000_000)
        assert got[0]["name"] == "victim"
        assert got[0]["state"] == "delaying"

    def test_unknown_op_gets_error_reply(self):
        cluster = BareCluster(n=1)
        ws = cluster.stations[0]
        got = []

        def client():
            reply = yield Send(
                local_kernel_server_group(me_lh.lhid), Message("no-such-op")
            )
            got.append(reply.kind)

        me_lh = ws.kernel.create_logical_host()
        ws.kernel.allocate_space(me_lh, 4096)
        cluster.spawn_program(ws, client(), lh=me_lh, name="client")
        cluster.run()
        assert got == ["ks-error"]


class TestForward:
    def test_forward_local_to_local(self):
        cluster = BareCluster(n=1)
        ws = cluster.stations[0]

        def final_server():
            sender, msg = yield Receive()
            yield Reply(sender, msg.replying(handled_by="final"))

        lh, final = cluster.spawn_program(ws, final_server(), name="final")

        def middleman():
            sender, msg = yield Receive()
            yield Forward(sender, msg, final.pid)
            yield Delay(1_000_000)

        _, middle = cluster.spawn_program(ws, middleman(), name="middle")
        got = []

        def client():
            reply = yield Send(middle.pid, Message("req"))
            got.append(reply["handled_by"])

        cluster.spawn_program(ws, client(), lh=lh, name="client")
        cluster.run(until_us=5_000_000)
        assert got == ["final"]

    def test_forward_to_remote_final_server(self):
        cluster = BareCluster(n=2)
        a, b = cluster.stations

        def final_server():
            sender, msg = yield Receive()
            yield Reply(sender, msg.replying(handled_by="remote-final"))

        _, final = cluster.spawn_program(b, final_server(), name="final")

        def middleman():
            sender, msg = yield Receive()
            yield Forward(sender, msg, final.pid)
            yield Delay(2_000_000)

        _, middle = cluster.spawn_program(a, middleman(), name="middle")
        got = []

        def client():
            reply = yield Send(middle.pid, Message("req"))
            got.append(reply["handled_by"])

        cluster.spawn_program(a, client(), name="client")
        cluster.run(until_us=10_000_000)
        assert got == ["remote-final"]


class TestGroups:
    def test_global_group_send_gets_first_reply(self):
        cluster = BareCluster(n=4)
        group = Pid(0xFFFF, 0x0042 | 0x8000)

        def member(delay_us):
            def body():
                while True:
                    sender, msg = yield Receive()
                    yield Compute(delay_us)
                    yield Reply(sender, msg.replying(who=delay_us))
            return body

        for i, ws in enumerate(cluster.stations[1:], start=1):
            _, pcb = cluster.spawn_program(ws, member(i * 10_000)(), name=f"m{i}")
            ws.kernel.groups.join(group, pcb.pid)
        got = []

        def client():
            reply = yield Send(group, Message("query"))
            got.append(reply["who"])

        cluster.spawn_program(cluster.stations[0], client(), name="client")
        cluster.run(until_us=10_000_000)
        # Fastest member (10 ms handling) answers first.
        assert got == [10_000]

    def test_group_send_with_no_members_times_out(self):
        cluster = BareCluster(n=2)
        group = Pid(0xFFFF, 0x0043 | 0x8000)
        caught = []

        def client():
            try:
                yield Send(group, Message("anyone"))
            except SendTimeoutError:
                caught.append(True)

        cluster.spawn_program(cluster.stations[0], client(), name="client")
        cluster.run(until_us=60_000_000)
        assert caught == [True]

    def test_extra_group_replies_are_collected(self):
        cluster = BareCluster(n=4)
        group = Pid(0xFFFF, 0x0044 | 0x8000)

        def member():
            sender, msg = yield Receive()
            yield Reply(sender, msg.replying(ok=True))

        for ws in cluster.stations[1:]:
            _, pcb = cluster.spawn_program(ws, member(), name="m")
            ws.kernel.groups.join(group, pcb.pid)
        counts = []

        def client():
            yield Send(group, Message("query"))
            yield Delay(1_000_000)  # let stragglers answer
            counts.append(len(client_pcb.logical_host.kernel.ipc.group_replies(client_pcb)))

        _, client_pcb = cluster.spawn_program(cluster.stations[0], client(), name="client")
        cluster.run(until_us=10_000_000)
        # 3 members answered; all replies (first + extras) were collected.
        assert counts == [3]


class TestBulkCopy:
    def test_copyto_remote_transfers_pages(self):
        from repro.config import PAGE_SIZE

        cluster = BareCluster(n=2)
        a, b = cluster.stations

        def idle():
            yield Delay(60_000_000)

        dst_lh, dst_pcb = cluster.spawn_program(
            b, idle(), space_bytes=PAGE_SIZE * 16, name="dst"
        )
        src_lh = a.kernel.create_logical_host()
        src_space = a.kernel.allocate_space(src_lh, PAGE_SIZE * 16, name="src")
        src_space.load_image()
        done = []

        def copier():
            n = yield CopyToInstr(dst_pcb.pid, src_space.pages)
            done.append(n)

        cluster.spawn_program(a, copier(), lh=src_lh, name="copier")
        cluster.run(until_us=60_000_000)
        assert done == [16]
        assert dst_pcb.space.identical_to(src_space)

    def test_copyto_rate_is_about_3s_per_mb(self):
        from repro.config import PAGE_SIZE

        cluster = BareCluster(n=2)
        a, b = cluster.stations
        mb = 1024 * 1024

        def idle():
            yield Delay(600_000_000)

        dst_lh, dst_pcb = cluster.spawn_program(b, idle(), space_bytes=mb, name="dst")
        src_lh = a.kernel.create_logical_host()
        src_space = a.kernel.allocate_space(src_lh, mb, name="src")
        times = []

        def copier():
            start = cluster.sim.now
            yield CopyToInstr(dst_pcb.pid, src_space.pages)
            times.append(cluster.sim.now - start)

        cluster.spawn_program(a, copier(), lh=src_lh, name="copier")
        cluster.run(until_us=600_000_000)
        assert times and 2_700_000 < times[0] < 3_400_000

    def test_copyto_to_crashed_host_fails(self):
        from repro.config import PAGE_SIZE
        from repro.errors import CopyFailedError

        cluster = BareCluster(n=2)
        a, b = cluster.stations

        def idle():
            yield Delay(60_000_000)

        dst_lh, dst_pcb = cluster.spawn_program(
            b, idle(), space_bytes=PAGE_SIZE * 4, name="dst"
        )
        src_lh = a.kernel.create_logical_host()
        src_space = a.kernel.allocate_space(src_lh, PAGE_SIZE * 4, name="src")
        caught = []

        def copier():
            # Prime the binding, then crash the destination.
            yield Send(local_kernel_server_group(dst_lh.lhid), Message("get-time"))
            b.crash()
            try:
                yield CopyToInstr(dst_pcb.pid, src_space.pages)
            except CopyFailedError:
                caught.append(True)

        cluster.spawn_program(a, copier(), lh=src_lh, name="copier")
        cluster.run(until_us=120_000_000)
        assert caught == [True]

    def test_copyfrom_remote_fetches_snapshots(self):
        from repro.config import PAGE_SIZE

        cluster = BareCluster(n=2)
        a, b = cluster.stations

        def idle():
            yield Delay(60_000_000)

        src_lh, src_pcb = cluster.spawn_program(
            b, idle(), space_bytes=PAGE_SIZE * 8, name="src"
        )
        src_pcb.space.touch_pages([0, 1, 2])
        got = []

        def fetcher():
            snaps = yield CopyFromInstr(src_pcb.pid, [0, 1, 2, 3])
            got.append(snaps)

        cluster.spawn_program(a, fetcher(), name="fetcher")
        cluster.run(until_us=60_000_000)
        assert len(got[0]) == 4
        assert [s.version for s in got[0]] == [1, 1, 1, 0]

    def test_copyto_local_is_fast(self):
        from repro.config import PAGE_SIZE

        cluster = BareCluster(n=1)
        ws = cluster.stations[0]

        def idle():
            yield Delay(60_000_000)

        dst_lh, dst_pcb = cluster.spawn_program(
            ws, idle(), space_bytes=PAGE_SIZE * 8, name="dst"
        )
        src_lh = ws.kernel.create_logical_host()
        src_space = ws.kernel.allocate_space(src_lh, PAGE_SIZE * 8, name="src")
        src_space.load_image()
        times = []

        def copier():
            start = cluster.sim.now
            yield CopyToInstr(dst_pcb.pid, src_space.pages)
            times.append(cluster.sim.now - start)

        cluster.spawn_program(ws, copier(), lh=src_lh, name="copier")
        cluster.run(until_us=60_000_000)
        assert times and times[0] < 100_000
        assert dst_pcb.space.identical_to(src_space)


class TestFreezeSemantics:
    def test_frozen_process_does_not_run(self):
        cluster = BareCluster(n=1)
        ws = cluster.stations[0]
        log = []

        def body():
            while True:
                yield Compute(10_000)
                log.append(cluster.sim.now)

        lh, pcb = cluster.spawn_program(ws, body(), name="looper")
        cluster.run(until_us=50_000)
        count_at_freeze = len(log)
        ws.kernel.freeze_logical_host(lh)
        cluster.run(until_us=1_000_000)
        assert len(log) == count_at_freeze
        ws.kernel.unfreeze_logical_host(lh)
        cluster.run(until_us=1_200_000)
        assert len(log) > count_at_freeze

    def test_request_to_frozen_process_is_deferred_not_lost(self):
        cluster = BareCluster(n=2)
        a, b = cluster.stations
        lh, server = cluster.spawn_program(b, echo_server_body(), name="server")
        got = []

        def client():
            # Prime binding.
            yield Send(server.pid, Message("ping", payload=0))
            b.kernel.freeze_logical_host(lh)
            reply = yield Send(server.pid, Message("ping", payload=1))
            got.append((cluster.sim.now, reply["echo"]))

        cluster.spawn_program(a, client(), name="client")
        cluster.run(until_us=3_000_000)
        assert got == []  # still frozen: the send is pending, not failed
        b.kernel.unfreeze_logical_host(lh)
        cluster.run(until_us=10_000_000)
        assert [echo for _, echo in got] == [1]

    def test_sender_does_not_timeout_during_long_freeze(self):
        """Reply-pending keeps the sender alive across a multi-second
        freeze (paper §3.1: aborts are prevented)."""
        cluster = BareCluster(n=2)
        a, b = cluster.stations
        lh, server = cluster.spawn_program(b, echo_server_body(), name="server")
        got, failed = [], []

        def client():
            yield Send(server.pid, Message("ping", payload=0))
            b.kernel.freeze_logical_host(lh)
            try:
                reply = yield Send(server.pid, Message("ping", payload=1))
                got.append(reply["echo"])
            except SendTimeoutError:
                failed.append(True)

        cluster.spawn_program(a, client(), name="client")
        cluster.run(until_us=8_000_000)  # frozen for 8 s >> retransmit budget
        b.kernel.unfreeze_logical_host(lh)
        cluster.run(until_us=20_000_000)
        assert failed == []
        assert got == [1]
