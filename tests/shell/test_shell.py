"""Integration tests for the shell on a live cluster."""

import pytest

from repro.cluster import build_cluster
from repro.shell import Shell
from repro.workloads import standard_registry


def make_cluster(n=3, scale=0.05, seed=0, **kwargs):
    return build_cluster(
        n_workstations=n, seed=seed, registry=standard_registry(scale=scale), **kwargs
    )


def test_foreground_command_reports_exit():
    cluster = make_cluster()
    shell = Shell(cluster, "ws0")
    shell.run_script(["tex paper.tex"])
    cluster.run(until_us=60_000_000)
    assert any("tex: exit 0" in line for line in shell.output)


def test_remote_command_at_machine():
    cluster = make_cluster()
    shell = Shell(cluster, "ws0")
    shell.run_script(["tex paper.tex @ ws2"])
    cluster.run(until_us=60_000_000)
    assert any("tex: exit 0" in line for line in shell.output)


def test_at_star_runs_elsewhere_and_completes():
    cluster = make_cluster(n=4)
    shell = Shell(cluster, "ws0")
    shell.run_script(["tex paper.tex @ *"])
    cluster.run(until_us=60_000_000)
    assert any("tex: exit 0" in line for line in shell.output)


def test_background_job_and_ps():
    cluster = make_cluster()
    shell = Shell(cluster, "ws0")
    shell.run_script([
        "longsim @ ws1 &",
        "ps ws1",
    ])
    cluster.run(until_us=20_000_000)
    assert any("started as" in line for line in shell.output)
    assert any("longsim" in line and "remote" in line for line in shell.output)


def test_unknown_program_reports_error():
    cluster = make_cluster()
    shell = Shell(cluster, "ws0")
    shell.run_script(["frobnicate"])
    cluster.run(until_us=30_000_000)
    assert any("frobnicate" in line and "no such program" in line
               for line in shell.output)


def test_syntax_error_reported_not_fatal():
    cluster = make_cluster()
    shell = Shell(cluster, "ws0")
    shell.run_script(["tex @", "hosts"])
    cluster.run(until_us=10_000_000)
    assert any("syntax error" in line for line in shell.output)
    assert any(line.startswith("ws0:") for line in shell.output)


def test_kill_background_job():
    cluster = make_cluster()
    shell = Shell(cluster, "ws0")
    shell.run_script([
        "longsim @ ws1 &",
        "kill %1",
    ])
    cluster.run(until_us=30_000_000)
    assert any("kill: ok" in line for line in shell.output)
    assert cluster.pm("ws1").remote_program_lhids() == []


def test_suspend_and_resume_job():
    cluster = make_cluster()
    shell = Shell(cluster, "ws0")
    shell.run_script([
        "longsim @ ws1 &",
        "suspend %1",
        "resume %1",
    ])
    cluster.run(until_us=30_000_000)
    assert any("suspend: ok" in line for line in shell.output)
    assert any("resume: ok" in line for line in shell.output)


def test_migrateprog_moves_background_job():
    cluster = make_cluster(n=3, scale=0.5)
    shell = Shell(cluster, "ws0")
    shell.run_script([
        "longsim @ ws1 &",
        "migrateprog %1",
    ])
    cluster.run(until_us=120_000_000)
    assert any("moved to" in line for line in shell.output), shell.output


def test_migrateprog_all_with_nothing_to_do():
    cluster = make_cluster()
    shell = Shell(cluster, "ws0")
    shell.run_script(["migrateprog"])
    cluster.run(until_us=20_000_000)
    assert any("nothing to migrate" in line for line in shell.output)


def test_hosts_listing():
    cluster = make_cluster(n=2)
    shell = Shell(cluster, "ws0")
    shell.run_script(["hosts"])
    cluster.run(until_us=10_000_000)
    assert sum(1 for line in shell.output if "programs," in line) == 2


def test_output_reaches_home_display():
    cluster = make_cluster()
    shell = Shell(cluster, "ws0")
    shell.run_script(["hosts"])
    cluster.run(until_us=10_000_000)
    display_lines = cluster.displays["ws0"].all_lines()
    assert shell.output and all(line in display_lines for line in shell.output)


def test_wait_builtin_blocks_until_job_exits():
    cluster = make_cluster()
    shell = Shell(cluster, "ws0")
    shell.run_script([
        "tex paper.tex @ ws1 &",
        "wait %1",
    ])
    cluster.run(until_us=120_000_000)
    assert any("exited 0" in line for line in shell.output), shell.output


def test_wait_unknown_job():
    cluster = make_cluster()
    shell = Shell(cluster, "ws0")
    shell.run_script(["wait %9"])
    cluster.run(until_us=10_000_000)
    assert any("unknown job" in line for line in shell.output)


def test_migrations_builtin_reports_history():
    cluster = make_cluster(n=3, scale=0.5)
    shell = Shell(cluster, "ws0")
    shell.run_script([
        "longsim @ ws1 &",
        "migrateprog %1",
        "migrations ws1",
    ])
    cluster.run(until_us=120_000_000)
    assert any("rounds" in line and "frozen" in line for line in shell.output), \
        shell.output


def test_migrations_builtin_empty():
    cluster = make_cluster()
    shell = Shell(cluster, "ws0")
    shell.run_script(["migrations"])
    cluster.run(until_us=20_000_000)
    assert any("none recorded" in line for line in shell.output)
