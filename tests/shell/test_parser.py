"""Unit tests for the shell command parser."""

import pytest

from repro.shell import Command, ParseError, parse_command


def test_plain_local_command():
    cmd = parse_command("cc68 prog.c")
    assert cmd == Command("cc68", ("prog.c",), "local", False)


def test_at_machine():
    cmd = parse_command("cc68 prog.c @ ws3")
    assert cmd.target == "ws3"
    assert cmd.args == ("prog.c",)


def test_at_star():
    cmd = parse_command("tex paper.tex @ *")
    assert cmd.target == "*"


def test_attached_at_form():
    cmd = parse_command("tex@ws2 paper.tex")
    assert cmd.program == "tex"
    assert cmd.target == "ws2"
    assert cmd.args == ("paper.tex",)


def test_background_ampersand():
    cmd = parse_command("longsim @ * &")
    assert cmd.background
    assert cmd.target == "*"


def test_background_attached():
    cmd = parse_command("longsim&")
    assert cmd.background
    assert cmd.program == "longsim"


def test_blank_and_comment_lines():
    assert parse_command("") is None
    assert parse_command("   ") is None
    assert parse_command("# a comment") is None


def test_no_args():
    cmd = parse_command("make")
    assert cmd.args == ()
    assert cmd.target == "local"


def test_builtin_detection():
    assert parse_command("migrateprog -n").is_builtin
    assert parse_command("ps ws1").is_builtin
    assert not parse_command("make").is_builtin


def test_at_without_target_rejected():
    with pytest.raises(ParseError):
        parse_command("cc68 prog.c @")


def test_at_without_program_rejected():
    with pytest.raises(ParseError):
        parse_command("@ ws1")


def test_trailing_junk_after_target_rejected():
    with pytest.raises(ParseError):
        parse_command("cc68 @ ws1 extra")


def test_lone_ampersand_rejected():
    with pytest.raises(ParseError):
        parse_command("&")


def test_migrateprog_flags_are_args():
    cmd = parse_command("migrateprog -n %1")
    assert cmd.args == ("-n", "%1")


def test_attached_form_with_empty_target_rejected():
    with pytest.raises(ParseError, match="malformed target"):
        parse_command("tex@ paper.tex")


def test_attached_form_with_empty_program_rejected():
    with pytest.raises(ParseError, match="malformed target"):
        parse_command("@ws2 paper.tex")


def test_double_target_rejected():
    with pytest.raises(ParseError, match="only one target"):
        parse_command("tex paper.tex @ ws1 ws2")


def test_background_at_star_attached_ampersand():
    # '@ *&' must strip the ampersand off the target, not reject it.
    cmd = parse_command("longsim @ ws2&")
    assert cmd.background
    assert cmd.target == "ws2"


def test_parse_errors_carry_a_usable_message():
    for line, fragment in [
        ("cc68 prog.c @", "requires a machine name"),
        ("@ ws1", "no program before"),
        ("&", "no command"),
    ]:
        with pytest.raises(ParseError, match=fragment):
            parse_command(line)
