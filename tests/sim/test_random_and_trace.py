"""Unit tests for random streams and the tracer."""

import pytest

from repro.sim import Simulator
from repro.sim.random import RandomStreams, derive_seed
from repro.sim.trace import TraceRecord, Tracer


class TestRandomStreams:
    def test_same_master_same_stream(self):
        a = RandomStreams(7).stream("x")
        b = RandomStreams(7).stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_independent(self):
        streams = RandomStreams(7)
        xs = [streams.stream("x").random() for _ in range(5)]
        ys = [streams.stream("y").random() for _ in range(5)]
        assert xs != ys

    def test_stream_is_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("a") is streams.stream("a")

    def test_derive_seed_stable(self):
        assert derive_seed(1, "net.loss") == derive_seed(1, "net.loss")
        assert derive_seed(1, "net.loss") != derive_seed(2, "net.loss")
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_chance_edges(self):
        streams = RandomStreams(0)
        assert streams.chance("c", 0.0) is False
        assert streams.chance("c", 1.0) is True

    def test_uniform_range(self):
        streams = RandomStreams(3)
        for _ in range(50):
            v = streams.uniform("u", 2.0, 5.0)
            assert 2.0 <= v <= 5.0

    def test_randint_range(self):
        streams = RandomStreams(3)
        values = {streams.randint("r", 1, 3) for _ in range(100)}
        assert values == {1, 2, 3}

    def test_choice_and_shuffled(self):
        streams = RandomStreams(3)
        seq = [1, 2, 3, 4]
        assert streams.choice("c", seq) in seq
        shuffled = streams.shuffled("s", seq)
        assert sorted(shuffled) == seq
        assert seq == [1, 2, 3, 4]  # original untouched


class TestTracer:
    def test_disabled_by_default(self):
        sim = Simulator()
        sim.trace.record("ipc", "send", n=1)
        assert sim.trace.records == []

    def test_enable_category(self):
        sim = Simulator()
        sim.trace.enable("ipc")
        sim.trace.record("ipc", "send", n=1)
        sim.trace.record("net", "drop")
        assert len(sim.trace.records) == 1
        assert sim.trace.records[0].category == "ipc"

    def test_star_enables_everything(self):
        sim = Simulator()
        sim.trace.enable("*")
        sim.trace.record("anything", "x")
        assert len(sim.trace.records) == 1

    def test_record_carries_time_and_data(self):
        sim = Simulator()
        sim.trace.enable("k")
        sim.schedule(500, lambda: sim.trace.record("k", "event", value=42))
        sim.run()
        rec = sim.trace.records[0]
        assert rec.time == 500
        assert rec.get("value") == 42
        assert rec.get("absent", "d") == "d"

    def test_filter(self):
        sim = Simulator()
        sim.trace.enable("a", "b")
        sim.trace.record("a", "x")
        sim.trace.record("b", "x")
        sim.trace.record("a", "y")
        assert len(sim.trace.filter(category="a")) == 2
        assert len(sim.trace.filter(message="x")) == 2
        assert len(sim.trace.filter(category="a", message="x")) == 1

    def test_disable_and_clear(self):
        sim = Simulator()
        sim.trace.enable("a")
        sim.trace.record("a", "x")
        sim.trace.disable("a")
        sim.trace.record("a", "y")
        assert len(sim.trace.records) == 1
        sim.trace.clear()
        assert sim.trace.records == []
