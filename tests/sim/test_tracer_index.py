"""The tracer's per-category index and its ring-buffer interactions."""

from repro.sim import Simulator


def make_tracer(categories=("*",)):
    sim = Simulator(seed=0)
    sim.trace.enable(*categories)
    return sim, sim.trace


class TestCategoryIndex:
    def test_filter_by_category_matches_full_scan(self):
        sim, trace = make_tracer()
        for i in range(50):
            trace.record("net" if i % 2 else "ipc", f"m{i}", i=i)
        for category in ("net", "ipc"):
            indexed = trace.filter(category=category)
            scanned = [r for r in trace.records if r.category == category]
            assert indexed == scanned  # same records, same order

    def test_filter_category_and_message(self):
        sim, trace = make_tracer()
        trace.record("net", "transmit", n=1)
        trace.record("net", "drop", n=2)
        trace.record("net", "transmit", n=3)
        got = trace.filter(category="net", message="transmit")
        assert [r.get("n") for r in got] == [1, 3]

    def test_filter_unknown_category_is_empty(self):
        sim, trace = make_tracer()
        trace.record("net", "transmit")
        assert trace.filter(category="nope") == []

    def test_index_consistent_after_ring_eviction(self):
        sim, trace = make_tracer()
        trace.use_ring_buffer(10)
        for i in range(35):
            trace.record("even" if i % 2 == 0 else "odd", f"m{i}", i=i)
        assert len(trace.records) == 10
        for category in ("even", "odd"):
            indexed = trace.filter(category=category)
            scanned = [r for r in trace.records if r.category == category]
            assert indexed == scanned

    def test_mode_switches_reindex(self):
        sim, trace = make_tracer()
        for i in range(20):
            trace.record("a", f"m{i}")
        trace.use_ring_buffer(5)  # drops the 15 oldest
        assert len(trace.filter(category="a")) == 5
        trace.use_unbounded()
        for i in range(20):
            trace.record("a", f"n{i}")
        assert len(trace.filter(category="a")) == 25


class TestRingClearRegression:
    def test_clear_preserves_ring_capacity(self):
        """Regression: clear() on a ring-buffered tracer must keep the
        capacity bound instead of reverting to unbounded growth."""
        sim, trace = make_tracer()
        trace.use_ring_buffer(8)
        for i in range(20):
            trace.record("x", f"m{i}")
        trace.clear()
        assert trace.capacity == 8
        assert len(trace.records) == 0
        for i in range(100):
            trace.record("x", f"n{i}")
        assert len(trace.records) == 8  # bound still enforced
        assert len(trace.filter(category="x")) == 8

    def test_clear_unbounded_stays_unbounded(self):
        sim, trace = make_tracer()
        for i in range(5):
            trace.record("x", f"m{i}")
        trace.clear()
        assert trace.capacity is None
        for i in range(50):
            trace.record("x", f"m{i}")
        assert len(trace.records) == 50

    def test_capacity_zero_ring_stays_empty(self):
        sim, trace = make_tracer()
        trace.use_ring_buffer(0)
        trace.record("x", "m")
        assert len(trace.records) == 0
        assert trace.filter(category="x") == []
