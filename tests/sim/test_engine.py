"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator, TaskFailed


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_schedule_runs_callback_at_right_time():
    sim = Simulator()
    seen = []
    sim.schedule(500, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [500]


def test_schedule_order_is_time_then_fifo():
    sim = Simulator()
    seen = []
    sim.schedule(10, seen.append, "b")
    sim.schedule(5, seen.append, "a")
    sim.schedule(10, seen.append, "c")
    sim.run()
    assert seen == ["a", "b", "c"]


def test_schedule_zero_delay_runs_at_current_time():
    sim = Simulator()
    times = []
    sim.schedule(100, lambda: sim.schedule(0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [100]


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_schedule_float_delay_rounds_half_up():
    # Regression: int(delay_us) silently truncated fractional delays, so
    # a 0.999 us pace ran the clock fast (0.999 -> 0).  Fractions now
    # round half up to the nearest whole microsecond.
    sim = Simulator()
    seen = []
    sim.schedule(0.999, lambda: seen.append(sim.now))
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.schedule(2.4, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1, 2, 3]


def test_schedule_float_delay_keeps_integer_clock():
    sim = Simulator()
    times = []

    def hop(n):
        times.append(sim.now)
        if n:
            sim.schedule(1.5, hop, n - 1)

    sim.schedule(1.5, hop, 3)
    sim.run()
    assert times == [2, 4, 6, 8]
    assert all(type(t) is int for t in times)


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(777, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [777]


def test_timer_cancel_prevents_firing():
    sim = Simulator()
    seen = []
    timer = sim.schedule(100, seen.append, "x")
    timer.cancel()
    sim.run()
    assert seen == []


def test_timer_cancel_is_idempotent():
    sim = Simulator()
    timer = sim.schedule(100, lambda: None)
    timer.cancel()
    timer.cancel()
    sim.run()


def test_run_until_stops_before_later_events():
    sim = Simulator()
    seen = []
    sim.schedule(100, seen.append, "early")
    sim.schedule(900, seen.append, "late")
    sim.run(until_us=500)
    assert seen == ["early"]
    assert sim.now == 500
    sim.run()
    assert seen == ["early", "late"]


def test_run_until_advances_clock_even_with_no_events():
    sim = Simulator()
    sim.run(until_us=12345)
    assert sim.now == 12345


def test_run_for_advances_relative():
    sim = Simulator()
    sim.run(until_us=100)
    sim.run_for(50)
    assert sim.now == 150


def test_run_max_events_budget():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.schedule(i + 1, seen.append, i)
    sim.run(max_events=3)
    assert seen == [0, 1, 2]


def test_peek_returns_next_live_event_time():
    sim = Simulator()
    timer = sim.schedule(10, lambda: None)
    sim.schedule(20, lambda: None)
    assert sim.peek() == 10
    timer.cancel()
    assert sim.peek() == 20


def test_peek_empty_heap_is_none():
    assert Simulator().peek() is None


def test_run_not_reentrant():
    sim = Simulator()

    def recurse():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1, recurse)
    sim.run()


def test_event_count_increments():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1, lambda: None)
    sim.run()
    assert sim.event_count == 5


class TestTasks:
    def test_simple_task_runs_to_completion(self):
        sim = Simulator()
        log = []

        def body():
            log.append(sim.now)
            yield 1000
            log.append(sim.now)

        task = sim.spawn(body())
        sim.run()
        assert log == [0, 1000]
        assert task.finished
        assert task.exception is None

    def test_task_result_from_return_value(self):
        sim = Simulator()

        def body():
            yield 10
            return 42

        task = sim.spawn(body())
        sim.run()
        assert task.result == 42

    def test_task_yield_none_resumes_same_instant(self):
        sim = Simulator()
        times = []

        def body():
            yield 5
            times.append(sim.now)
            yield None
            times.append(sim.now)

        sim.spawn(body())
        sim.run()
        assert times == [5, 5]

    def test_task_waits_on_event_and_receives_value(self):
        sim = Simulator()
        ev = sim.event("go")
        got = []

        def waiter():
            value = yield ev
            got.append((sim.now, value))

        sim.spawn(waiter())
        sim.schedule(300, ev.trigger, "payload")
        sim.run()
        assert got == [(300, "payload")]

    def test_task_waiting_on_already_triggered_event(self):
        sim = Simulator()
        ev = sim.event()
        ev.trigger("early")
        got = []

        def waiter():
            got.append((yield ev))

        sim.spawn(waiter())
        sim.run()
        assert got == ["early"]

    def test_event_trigger_twice_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.trigger()
        with pytest.raises(SimulationError):
            ev.trigger()

    def test_task_waits_on_other_task(self):
        sim = Simulator()

        def child():
            yield 100
            return "done"

        def parent():
            result = yield sim.spawn(child())
            return result

        task = sim.spawn(parent())
        sim.run()
        assert task.result == "done"
        assert sim.now == 100

    def test_child_task_exception_propagates_to_waiter(self):
        sim = Simulator()
        sim.strict = False

        def child():
            yield 10
            raise ValueError("boom")

        def parent():
            try:
                yield sim.spawn(child())
            except ValueError as exc:
                return f"caught {exc}"

        task = sim.spawn(parent())
        sim.run()
        assert task.result == "caught boom"

    def test_unhandled_task_exception_raises_from_run(self):
        sim = Simulator()

        def body():
            yield 10
            raise RuntimeError("unhandled")

        sim.spawn(body())
        with pytest.raises(TaskFailed):
            sim.run()

    def test_non_strict_mode_collects_failures(self):
        sim = Simulator()
        sim.strict = False

        def body():
            yield 10
            raise RuntimeError("collected")

        sim.spawn(body())
        sim.run()
        assert len(sim.failures) == 1

    def test_spawn_requires_generator(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.spawn(lambda: None)

    def test_float_delay_rejected(self):
        sim = Simulator()

        def body():
            yield 1.5

        sim.spawn(body())
        with pytest.raises(TaskFailed):
            sim.run()

    def test_negative_delay_in_task_rejected(self):
        sim = Simulator()

        def body():
            yield -5

        sim.spawn(body())
        with pytest.raises((TaskFailed, SimulationError)):
            sim.run()


class TestInterrupts:
    def test_interrupt_wakes_sleeping_task(self):
        from repro.sim import Interrupted

        sim = Simulator()
        log = []

        def body():
            try:
                yield 1_000_000
            except Interrupted as intr:
                log.append((sim.now, intr.cause))

        task = sim.spawn(body())
        sim.schedule(500, task.interrupt, "preempted")
        sim.run()
        assert log == [(500, "preempted")]

    def test_uncaught_interrupt_cancels_task_quietly(self):
        sim = Simulator()

        def body():
            yield 1_000_000

        task = sim.spawn(body())
        sim.schedule(10, task.interrupt)
        sim.run()
        assert task.finished
        assert task.interrupted
        assert task.exception is None
        assert sim.failures == []

    def test_interrupt_finished_task_is_noop(self):
        sim = Simulator()

        def body():
            yield 10

        task = sim.spawn(body())
        sim.run()
        task.interrupt()
        sim.run()
        assert task.exception is None

    def test_stale_timer_does_not_resume_after_interrupt(self):
        from repro.sim import Interrupted

        sim = Simulator()
        resumes = []

        def body():
            try:
                yield 100
            except Interrupted:
                pass
            yield 500
            resumes.append(sim.now)

        task = sim.spawn(body())
        sim.schedule(50, task.interrupt)
        sim.run()
        # Interrupted at 50, then slept 500 more: resumes at 550, not 100.
        assert resumes == [550]

    def test_interrupt_cancels_abandoned_timer(self):
        from repro.sim import Interrupted

        sim = Simulator()

        def body():
            try:
                yield 10_000
            except Interrupted:
                pass

        task = sim.spawn(body())
        sim.schedule(50, task.interrupt)
        sim.run()
        # The abandoned 10 ms timer is cancelled when the throw lands,
        # so the run is quiescent at the interrupt instant instead of
        # dragging on to fire a stale no-op.
        assert task.finished
        assert sim.now == 50
        assert sim.alive_event_count == 0


class TestCombinators:
    def test_anyof_first_event_wins(self):
        from repro.sim import AnyOf

        sim = Simulator()
        a, b = sim.event("a"), sim.event("b")
        got = []

        def body():
            got.append((yield AnyOf([a, b])))

        sim.spawn(body())
        sim.schedule(10, b.trigger, "bee")
        sim.schedule(20, a.trigger, "aye")
        sim.run()
        assert got == [(1, "bee")]

    def test_anyof_with_timeout_member(self):
        from repro.sim import AnyOf

        sim = Simulator()
        ev = sim.event()
        got = []

        def body():
            got.append((yield AnyOf([ev, 250])))

        sim.spawn(body())
        sim.run()
        assert got == [(1, None)]
        assert sim.now == 250

    def test_anyof_event_beats_timeout(self):
        from repro.sim import AnyOf

        sim = Simulator()
        ev = sim.event()
        got = []

        def body():
            got.append((yield AnyOf([ev, 250])))

        sim.spawn(body())
        sim.schedule(100, ev.trigger, "fast")
        sim.run()
        assert got == [(0, "fast")]

    def test_anyof_losing_timer_is_cancelled_on_event_win(self):
        # Regression: the losing int-delay branch used to sit live in
        # the queue until its deadline, inflating alive_event_count and
        # dragging run() out to the stale timeout.
        from repro.sim import AnyOf

        sim = Simulator()
        ev = sim.event()
        got = []

        def body():
            got.append((yield AnyOf([ev, 10_000])))

        sim.spawn(body())
        sim.schedule(100, ev.trigger, "fast")
        sim.run()
        assert got == [(0, "fast")]
        assert sim.now == 100  # not 10_000: the loser never fires
        assert sim.alive_event_count == 0

    def test_anyof_losing_timer_is_cancelled_on_timer_win(self):
        from repro.sim import AnyOf

        sim = Simulator()
        got = []

        def body():
            got.append((yield AnyOf([5, 10_000])))

        sim.spawn(body())
        sim.run()
        assert got == [(0, None)]
        assert sim.now == 5
        assert sim.alive_event_count == 0

    def test_allof_waits_for_every_member(self):
        from repro.sim import AllOf

        sim = Simulator()
        a, b = sim.event(), sim.event()
        got = []

        def body():
            got.append((yield AllOf([a, b])))

        sim.spawn(body())
        sim.schedule(10, a.trigger, 1)
        sim.schedule(30, b.trigger, 2)
        sim.run()
        assert got == [[1, 2]]
        assert sim.now == 30

    def test_empty_combinator_rejected(self):
        from repro.sim import AllOf, AnyOf

        with pytest.raises(SimulationError):
            AnyOf([])
        with pytest.raises(SimulationError):
            AllOf([])


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        def trajectory(seed):
            sim = Simulator(seed=seed)
            log = []

            def body(name):
                for _ in range(20):
                    delay = sim.rand.randint("jitter", 1, 100)
                    yield delay
                    log.append((sim.now, name))

            sim.spawn(body("x"))
            sim.spawn(body("y"))
            sim.run()
            return log

        assert trajectory(7) == trajectory(7)
        assert trajectory(7) != trajectory(8)


def test_event_remove_callback():
    sim = Simulator()
    ev = sim.event()
    fired = []

    def cb(event):
        fired.append(event.value)

    ev.on_trigger(cb)
    ev.remove_callback(cb)
    ev.remove_callback(cb)  # absent: no-op
    ev.trigger("x")
    sim.run()
    assert fired == []


class TestRunForPeekInteraction:
    """Regressions for the run_for/peek/max_events contract: a run cut
    short by its event budget must report the true final now(), and a
    peek() issued from inside a callback must not detach the run loop
    from the live heap."""

    def test_max_events_does_not_teleport_clock_to_until(self):
        sim = Simulator()
        seen = []
        for t in (10, 20, 30):
            sim.schedule(t, seen.append, t)
        final = sim.run(until_us=1_000, max_events=1)
        # Only the t=10 event fired; events at 20 and 30 are still
        # pending, so the clock must not have jumped to 1000.
        assert seen == [10]
        assert final == sim.now == 10
        assert sim.run(until_us=1_000) == 1_000
        assert seen == [10, 20, 30]

    def test_until_still_advances_clock_when_quiescent(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        # Budget exhausted, but nothing else is pending before until_us:
        # advancing to until_us is the documented contract.
        assert sim.run(until_us=500, max_events=1) == 500
        sim.schedule(700, lambda: None)  # beyond the window
        assert sim.run(until_us=600, max_events=5) == 600

    def test_run_for_reports_true_final_now_after_budgeted_run(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            sim.schedule(100, tick)

        sim.schedule(100, tick)
        sim.run(until_us=10_000, max_events=3)
        assert sim.now == 300  # not 10_000: the heap was not exhausted
        sim.run_for(200)
        assert sim.now == 500

    def test_peek_compaction_inside_callback_keeps_run_live(self):
        sim = Simulator()
        # A mass of cancelled timers deep enough that the next peek()
        # triggers a one-pass compaction (which swaps out sim._heap).
        stale = [sim.schedule(50_000 + i, lambda: None) for i in range(200)]
        for timer in stale:
            timer.cancel()
        del stale
        seen = []

        def probe():
            seen.append(("probe", sim.now))
            assert sim.peek() == 200  # compacts: cancelled > half the heap
            sim.schedule(300, seen.append, ("late", 400))

        sim.schedule(100, probe)
        sim.schedule(200, seen.append, ("mid", 200))
        final = sim.run()
        # Both the pre-existing event and the one scheduled after the
        # in-callback compaction must fire.
        assert seen == [("probe", 100), ("mid", 200), ("late", 400)]
        assert final == 400
