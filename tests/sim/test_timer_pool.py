"""Unit tests for timer pooling, heap compaction and the zero-cost tracer."""

import pytest

from repro._fastpath import FASTPATH
from repro.sim import Simulator
from repro.sim.engine import _COMPACT_MIN_CANCELLED


@pytest.fixture
def heap_sim():
    """A Simulator pinned to the reference heap core.

    The compaction tests below exercise heap mechanics specifically;
    under ``REPRO_EVENT_WHEEL=1`` (the forced-on CI job) their near-term
    timers would land in wheel buckets and never create heap pressure,
    so the heap core is selected explicitly.  Wheel-side sweep coverage
    lives in tests/sim/test_event_wheel.py.
    """
    saved = FASTPATH.event_wheel
    FASTPATH.event_wheel = False
    try:
        yield Simulator()
    finally:
        FASTPATH.event_wheel = saved


class TestTimerPool:
    def test_fired_timers_are_reused(self):
        sim = Simulator()
        for _ in range(50):
            sim.schedule(1, lambda: None)
        sim.run()
        for _ in range(50):
            sim.schedule(1, lambda: None)
        sim.run()
        assert sim.timers_reused > 0

    def test_retained_handle_is_never_reused(self):
        sim = Simulator()
        held = sim.schedule(1, lambda: None)
        sim.run()
        # The handle is still alive out here, so it must not be in the
        # pool: a new schedule gets a different object.
        fresh = sim.schedule(1, lambda: None)
        assert fresh is not held
        sim.run()

    def test_stale_cancel_after_firing_is_harmless(self):
        sim = Simulator()
        seen = []
        held = sim.schedule(1, seen.append, "a")
        sim.run()
        held.cancel()  # late cancel of an already-fired timer
        sim.schedule(1, seen.append, "b")
        sim.schedule(2, seen.append, "c")
        sim.run()
        assert seen == ["a", "b", "c"]
        assert sim.alive_event_count == 0

    def test_cancel_still_prevents_firing_with_pool_active(self):
        sim = Simulator()
        seen = []
        for _ in range(20):
            sim.schedule(1, lambda: None)
        sim.run()  # seeds the pool
        timer = sim.schedule(5, seen.append, "no")
        timer.cancel()
        timer.cancel()  # idempotent
        sim.run()
        assert seen == []


class TestAliveEventCount:
    def test_counts_only_live_timers(self):
        sim = Simulator()
        timers = [sim.schedule(10 + i, lambda: None) for i in range(10)]
        assert sim.alive_event_count == 10
        for t in timers[:4]:
            t.cancel()
        assert sim.alive_event_count == 6
        sim.run()
        assert sim.alive_event_count == 0

    def test_peek_drops_dead_prefix_from_accounting(self):
        sim = Simulator()
        early = sim.schedule(1, lambda: None)
        sim.schedule(50, lambda: None)
        early.cancel()
        assert sim.peek() == 50
        assert sim.alive_event_count == 1


class TestCompaction:
    def test_mass_cancellation_compacts_instead_of_popping(self, heap_sim):
        sim = heap_sim
        n = 4 * _COMPACT_MIN_CANCELLED
        doomed = [sim.schedule(1_000 + i, lambda: None) for i in range(n)]
        survivor = []
        sim.schedule(10_000, survivor.append, "ran")
        for t in doomed:
            t.cancel()
        assert sim.alive_event_count == 1
        sim.run()
        assert survivor == ["ran"]
        assert sim.compactions >= 1
        assert sim.alive_event_count == 0

    def test_compaction_preserves_event_order(self, heap_sim):
        sim = heap_sim
        seen = []
        cancelled = [sim.schedule(100, lambda: None)
                     for _ in range(4 * _COMPACT_MIN_CANCELLED)]
        # Same-time events must still fire in scheduling (FIFO) order
        # after the heap is rebuilt.
        for tag in ("a", "b", "c"):
            sim.schedule(500, seen.append, tag)
        for tag in ("x", "y"):
            sim.schedule(200, seen.append, tag)
        for t in cancelled:
            t.cancel()
        sim.run()
        assert seen == ["x", "y", "a", "b", "c"]
        assert sim.compactions >= 1

    def test_determinism_with_and_without_compaction_pressure(self):
        def trajectory(cancel_storm):
            sim = Simulator(seed=5)
            log = []

            def body(name):
                for _ in range(10):
                    yield sim.rand.randint("jitter", 1, 50)
                    log.append((sim.now, name))

            sim.spawn(body("x"))
            sim.spawn(body("y"))
            if cancel_storm:
                storm = [sim.schedule(10_000 + i, lambda: None)
                         for i in range(4 * _COMPACT_MIN_CANCELLED)]
                for t in storm:
                    t.cancel()
            sim.run()
            return log

        assert trajectory(True) == trajectory(False)


class TestTracerFastPath:
    def test_active_flag_follows_enable_disable(self):
        sim = Simulator()
        assert sim.trace.active is False
        sim.trace.enable("ipc")
        assert sim.trace.active is True
        sim.trace.disable("ipc")
        assert sim.trace.active is False

    def test_ring_buffer_bounds_memory(self):
        sim = Simulator()
        sim.trace.enable("*")
        sim.trace.use_ring_buffer(5)
        for i in range(20):
            sim.trace.record("cat", "msg", i=i)
        assert len(sim.trace.records) == 5
        assert [r.get("i") for r in sim.trace.records] == [15, 16, 17, 18, 19]
        assert len(sim.trace.filter(category="cat")) == 5

    def test_ring_buffer_round_trip_to_unbounded(self):
        sim = Simulator()
        sim.trace.enable("*")
        sim.trace.record("a", "one")
        sim.trace.use_ring_buffer(10)
        sim.trace.record("a", "two")
        sim.trace.use_unbounded()
        sim.trace.record("a", "three")
        assert [r.message for r in sim.trace.records] == ["one", "two", "three"]

    def test_traced_runs_are_bit_identical_across_seeds(self):
        def traced(seed):
            sim = Simulator(seed=seed)
            sim.trace.enable("*")

            def body(name):
                for _ in range(15):
                    yield sim.rand.randint("d", 1, 30)
                    sim.trace.record("task", "step", name=name, at=sim.now)

            sim.spawn(body("p"))
            sim.spawn(body("q"))
            sim.run()
            return repr(sim.trace.records)

        assert traced(9) == traced(9)
        assert traced(9) != traced(10)
