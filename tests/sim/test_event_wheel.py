"""Unit tests for the hybrid event core (WheelSimulator).

The equivalence property tests in tests/properties/test_event_core.py
prove heap/wheel trajectory identity on randomized programs; these tests
pin down the wheel's own mechanics -- bucket wrap-around, the overflow
heap, dead-bucket sweeping, counters and the construction-time toggle.
"""

import pytest

from repro._fastpath import FASTPATH
from repro.sim import Simulator
from repro.sim.engine import (
    _COMPACT_MIN_CANCELLED,
    _WHEEL_SPAN,
    WheelSimulator,
)


@pytest.fixture
def wheel_sim():
    saved = FASTPATH.event_wheel
    FASTPATH.event_wheel = True
    try:
        yield Simulator()
    finally:
        FASTPATH.event_wheel = saved


class TestToggleDispatch:
    def test_simulator_constructs_wheel_when_toggled(self):
        saved = FASTPATH.event_wheel
        try:
            FASTPATH.event_wheel = True
            sim = Simulator()
            assert isinstance(sim, WheelSimulator)
            assert sim.event_core == "wheel"
            FASTPATH.event_wheel = False
            sim = Simulator()
            assert not isinstance(sim, WheelSimulator)
            assert sim.event_core == "heap"
        finally:
            FASTPATH.event_wheel = saved

    def test_set_all_leaves_event_wheel_alone(self):
        saved = FASTPATH.event_wheel
        try:
            FASTPATH.event_wheel = True
            FASTPATH.set_all(False)
            assert FASTPATH.event_wheel is True
            FASTPATH.set_all(True)
            assert FASTPATH.event_wheel is True
        finally:
            FASTPATH.event_wheel = saved
            FASTPATH.set_all(True)

    def test_explicit_class_still_constructable(self):
        saved = FASTPATH.event_wheel
        try:
            FASTPATH.event_wheel = False
            sim = WheelSimulator(seed=3)
            assert sim.event_core == "wheel"
        finally:
            FASTPATH.event_wheel = saved


class TestQueueRouting:
    def test_delay_zero_goes_to_now_queue(self, wheel_sim):
        sim = wheel_sim
        sim.schedule(0, lambda: None)
        assert sim.now_queue_hits == 1
        assert sim.wheel_hits == 0
        assert sim.overflow_hits == 0
        assert sim.alive_event_count == 1

    def test_near_delay_goes_to_wheel(self, wheel_sim):
        sim = wheel_sim
        sim.schedule(_WHEEL_SPAN - 1, lambda: None)
        assert sim.wheel_hits == 1
        assert sim.overflow_hits == 0

    def test_far_delay_overflows_to_heap(self, wheel_sim):
        sim = wheel_sim
        sim.schedule(_WHEEL_SPAN, lambda: None)
        assert sim.overflow_hits == 1
        assert sim.wheel_hits == 0

    def test_overflow_merges_before_wheel_on_tied_instant(self, wheel_sim):
        # An overflow entry and a wheel entry landing on the same
        # absolute time must fire in seq order: the overflow one was
        # necessarily scheduled earlier (it needed a delay >= the span).
        sim = wheel_sim
        seen = []
        target = _WHEEL_SPAN + 10
        sim.schedule(target, seen.append, "overflow")

        def late_scheduler():
            yield 20  # now within one span of the target
            sim.schedule(target - sim.now, seen.append, "wheel")

        sim.spawn(late_scheduler())
        sim.run()
        assert seen == ["overflow", "wheel"]
        assert sim.now == target

    def test_bucket_wraparound(self, wheel_sim):
        # Two delays whose absolute times straddle the wheel's wrap
        # point still fire in time order.
        sim = wheel_sim
        seen = []

        def body():
            yield _WHEEL_SPAN - 5  # park now just below the wrap
            sim.schedule(3, seen.append, "pre-wrap")
            sim.schedule(10, seen.append, "post-wrap")  # wraps the index

        sim.spawn(body())
        sim.run()
        assert seen == ["pre-wrap", "post-wrap"]
        assert sim.now == _WHEEL_SPAN + 5

    def test_same_bucket_fifo_order(self, wheel_sim):
        sim = wheel_sim
        seen = []
        for tag in ("a", "b", "c"):
            sim.schedule(7, seen.append, tag)
        sim.run()
        assert seen == ["a", "b", "c"]


class TestCancellation:
    def test_cancelled_wheel_entry_never_fires(self, wheel_sim):
        sim = wheel_sim
        seen = []
        doomed = sim.schedule(5, seen.append, "no")
        sim.schedule(9, seen.append, "yes")
        doomed.cancel()
        assert sim.alive_event_count == 1
        sim.run()
        assert seen == ["yes"]
        assert sim.alive_event_count == 0

    def test_cancelled_instant_does_not_advance_clock(self, wheel_sim):
        # Matching the heap core: skipping dead entries must not move
        # ``now`` to their deadline.
        sim = wheel_sim
        sim.schedule(5, lambda: None).cancel()
        sim.run()
        assert sim.now == 0

    def test_cancel_purges_bucket_entry_eagerly(self, wheel_sim):
        # Bucket entries are physically removed at cancel() time, so
        # buckets stay live-only and peek never sees a dead bucket.
        sim = wheel_sim
        sim.schedule(5, lambda: None).cancel()
        assert sim._bucket_count == 0
        live = sim.schedule(50, lambda: None)
        assert sim._bucket_count == 1
        assert sim.peek() == 50
        assert sim.alive_event_count == 1
        live.cancel()
        assert sim._bucket_count == 0
        assert sim.peek() is None
        assert sim.alive_event_count == 0

    def test_overflow_mass_cancellation_still_compacts(self, wheel_sim):
        sim = wheel_sim
        n = 4 * _COMPACT_MIN_CANCELLED
        doomed = [
            sim.schedule(_WHEEL_SPAN + 1_000 + i, lambda: None) for i in range(n)
        ]
        survivor = []
        sim.schedule(10, survivor.append, "ran")
        for t in doomed:
            t.cancel()
        assert sim.alive_event_count == 1
        sim.run()
        assert survivor == ["ran"]
        assert sim.compactions >= 1
        assert sim.alive_event_count == 0

    def test_timer_pool_reuse(self, wheel_sim):
        sim = wheel_sim
        for _ in range(50):
            sim.schedule(1, lambda: None)
        sim.run()
        for _ in range(50):
            sim.schedule(0, lambda: None)
        sim.run()
        assert sim.timers_reused > 0


class TestRunContracts:
    def test_run_until_and_quiescent_clamp(self, wheel_sim):
        sim = wheel_sim
        seen = []
        sim.schedule(10, seen.append, "a")
        sim.schedule(500, seen.append, "b")
        assert sim.run(until_us=100) == 100
        assert seen == ["a"]
        assert sim.run() == 500
        assert seen == ["a", "b"]

    def test_max_events_does_not_teleport_clock(self, wheel_sim):
        sim = wheel_sim
        for delay in (10, 20, 30):
            sim.schedule(delay, lambda: None)
        sim.run(until_us=1_000, max_events=2)
        assert sim.now == 20  # live event still pending at 30

    def test_budget_break_mid_instant_resumes_in_order(self, wheel_sim):
        sim = wheel_sim
        seen = []
        for tag in ("a", "b", "c"):
            sim.schedule(5, seen.append, tag)
        sim.run(max_events=2)
        assert seen == ["a", "b"]
        assert sim.peek() == 5
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_counters_mirrored_into_metrics(self):
        saved = FASTPATH.event_wheel
        FASTPATH.event_wheel = True
        try:
            sim = Simulator()
            sim.metrics.enable()
            sim.schedule(0, lambda: None)
            sim.schedule(5, lambda: None)
            sim.schedule(_WHEEL_SPAN + 5, lambda: None)

            def body():
                yield 1

            sim.spawn(body())
            sim.run()
            m = sim.metrics
            assert m.aggregate("engine.now_queue_hits") >= 1
            assert m.aggregate("engine.wheel_hits") >= 1
            assert m.aggregate("engine.overflow_hits") >= 1
            assert m.aggregate("engine.closure_free_steps") >= 1
        finally:
            FASTPATH.event_wheel = saved
