"""Unit tests for display servers and name servers."""

import pytest

from repro.cluster import build_cluster
from repro.execution import ProgramRegistry
from repro.ipc.messages import Message
from repro.kernel.process import Send


def make_cluster(n=2):
    return build_cluster(n_workstations=n, registry=ProgramRegistry())


def run_session(cluster, body_factory, station=0):
    cluster.spawn_session(cluster.workstations[station], body_factory, name="s")
    cluster.run(until_us=30_000_000)


class TestDisplayServer:
    def test_display_appends_to_transcript(self):
        cluster = make_cluster()

        def session(ctx):
            yield Send(ctx.stdout, Message("display", text="hello"))
            yield Send(ctx.stdout, Message("display", text="world"))

        run_session(cluster, session)
        assert cluster.displays["ws0"].all_lines() == ["hello", "world"]

    def test_lines_attributed_to_sender(self):
        cluster = make_cluster()
        pids = {}

        def session(ctx):
            pids["me"] = ctx.self_pid
            yield Send(ctx.stdout, Message("display", text="mine"))

        run_session(cluster, session)
        display = cluster.displays["ws0"]
        assert display.lines_from(pids["me"]) == ["mine"]

    def test_read_transcript_op(self):
        cluster = make_cluster()
        got = []

        def session(ctx):
            yield Send(ctx.stdout, Message("display", text="a"))
            reply = yield Send(ctx.stdout, Message("read-transcript"))
            got.append(reply["lines"])

        run_session(cluster, session)
        assert got == [("a",)]

    def test_each_workstation_has_own_display(self):
        cluster = make_cluster(n=3)
        assert len({id(d) for d in cluster.displays.values()}) == 3

    def test_unknown_op_errors(self):
        cluster = make_cluster()
        got = []

        def session(ctx):
            reply = yield Send(ctx.stdout, Message("paint-pixels"))
            got.append(reply.kind)

        run_session(cluster, session)
        assert got == ["ds-error"]

    def test_remote_program_writes_to_requester_display(self):
        """The display server stays co-resident with its frame buffer;
        programs reach it by pid wherever they run (paper §2)."""
        cluster = make_cluster()
        ws0_display_pid = cluster.displays["ws0"].pcb.pid

        # A program on ws1 holding ws0's display pid writes there.
        def session(ctx):
            yield Send(ws0_display_pid, Message("display", text="from ws1"))

        run_session(cluster, session, station=1)
        assert "from ws1" in cluster.displays["ws0"].all_lines()
        assert "from ws1" not in cluster.displays["ws1"].all_lines()


class TestNameServer:
    def test_register_and_lookup(self):
        from repro.kernel.ids import Pid

        cluster = make_cluster()
        got = []

        def session(ctx):
            ns = ctx.server("name-server")
            yield Send(ns, Message("register-name", name="printer", pid=Pid(9, 9)))
            reply = yield Send(ns, Message("lookup-name", name="printer"))
            got.append(reply["pid"])

        run_session(cluster, session)
        from repro.kernel.ids import Pid

        assert got == [Pid(9, 9)]

    def test_lookup_unbound_name(self):
        cluster = make_cluster()
        got = []

        def session(ctx):
            ns = ctx.server("name-server")
            reply = yield Send(ns, Message("lookup-name", name="ghost"))
            got.append(reply.kind)

        run_session(cluster, session)
        assert got == ["ns-error"]

    def test_unregister(self):
        from repro.kernel.ids import Pid

        cluster = make_cluster()
        got = []

        def session(ctx):
            ns = ctx.server("name-server")
            yield Send(ns, Message("register-name", name="x", pid=Pid(1, 1)))
            yield Send(ns, Message("unregister-name", name="x"))
            reply = yield Send(ns, Message("lookup-name", name="x"))
            got.append(reply.kind)

        run_session(cluster, session)
        assert got == ["ns-error"]

    def test_rebinding_a_name(self):
        from repro.kernel.ids import Pid

        cluster = make_cluster()
        got = []

        def session(ctx):
            ns = ctx.server("name-server")
            yield Send(ns, Message("register-name", name="svc", pid=Pid(1, 1)))
            yield Send(ns, Message("register-name", name="svc", pid=Pid(2, 2)))
            reply = yield Send(ns, Message("lookup-name", name="svc"))
            got.append(reply["pid"])

        run_session(cluster, session)
        from repro.kernel.ids import Pid

        assert got == [Pid(2, 2)]

    def test_lookup_counter(self):
        cluster = make_cluster()

        def session(ctx):
            ns = ctx.server("name-server")
            yield Send(ns, Message("lookup-name", name="a"))
            yield Send(ns, Message("lookup-name", name="b"))

        run_session(cluster, session)
        assert cluster.name_servers[0].lookups == 2


class TestContextServerLookup:
    def test_server_helper_raises_on_unknown_name(self):
        cluster = make_cluster()
        caught = []

        def session(ctx):
            try:
                ctx.server("mainframe")
            except KeyError as exc:
                caught.append(str(exc))
            yield Send(ctx.stdout, Message("display", text="done"))

        run_session(cluster, session)
        assert caught
