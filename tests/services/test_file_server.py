"""Unit tests for the network file server."""

import pytest

from repro.cluster import build_cluster
from repro.execution import ProgramImage, ProgramRegistry
from repro.ipc.messages import Message
from repro.kernel.process import Send


def make_cluster():
    registry = ProgramRegistry()

    def body(ctx):
        from repro.kernel.process import Compute

        yield Compute(1_000)
        return 0

    registry.register(ProgramImage(
        name="tool", image_bytes=50 * 1024, space_bytes=96 * 1024,
        code_bytes=40 * 1024, body_factory=body,
    ))
    return build_cluster(n_workstations=2, registry=registry)


def run_client(cluster, script, results):
    """Run a bare client session performing file-server requests."""

    def session(ctx):
        fs = ctx.server("file-server")
        for msg in script:
            reply = yield Send(fs, msg)
            results.append(reply)

    cluster.spawn_session(cluster.workstations[0], session, name="fs-client")
    cluster.run(until_us=30_000_000)


class TestFileOps:
    def test_write_then_read(self):
        cluster = make_cluster()
        results = []
        run_client(cluster, [
            Message("write-file", path="/tmp/x", nbytes=4096),
            Message("read-file", path="/tmp/x"),
        ], results)
        assert results[0].kind == "fs-ok"
        assert results[1].kind == "fs-ok"
        assert results[1]["size"] == 4096

    def test_writes_append(self):
        cluster = make_cluster()
        results = []
        run_client(cluster, [
            Message("write-file", path="/tmp/x", nbytes=1000),
            Message("write-file", path="/tmp/x", nbytes=500),
            Message("read-file", path="/tmp/x"),
        ], results)
        assert results[2]["size"] == 1500

    def test_read_missing_file_errors(self):
        cluster = make_cluster()
        results = []
        run_client(cluster, [Message("read-file", path="/nope")], results)
        assert results[0].kind == "fs-error"

    def test_delete_file(self):
        cluster = make_cluster()
        results = []
        run_client(cluster, [
            Message("write-file", path="/tmp/y", nbytes=10),
            Message("delete-file", path="/tmp/y"),
            Message("read-file", path="/tmp/y"),
        ], results)
        assert results[1].kind == "fs-ok"
        assert results[2].kind == "fs-error"

    def test_list_files(self):
        cluster = make_cluster()
        results = []
        run_client(cluster, [
            Message("write-file", path="/b", nbytes=1),
            Message("write-file", path="/a", nbytes=1),
            Message("list-files"),
        ], results)
        assert results[2]["paths"] == ["/a", "/b"]

    def test_unknown_op(self):
        cluster = make_cluster()
        results = []
        run_client(cluster, [Message("format-disk")], results)
        assert results[0].kind == "fs-error"

    def test_read_cost_scales_with_size(self):
        cluster = make_cluster()
        times = []

        def session(ctx):
            fs = ctx.server("file-server")
            yield Send(fs, Message("write-file", path="/small", nbytes=1024))
            yield Send(fs, Message("write-file", path="/big", nbytes=512 * 1024))
            start = ctx.sim.now
            yield Send(fs, Message("read-file", path="/small"))
            times.append(ctx.sim.now - start)
            start = ctx.sim.now
            yield Send(fs, Message("read-file", path="/big"))
            times.append(ctx.sim.now - start)

        cluster.spawn_session(cluster.workstations[0], session, name="c")
        cluster.run(until_us=60_000_000)
        assert times[1] > times[0] * 5


class TestImageOps:
    def test_stat_image(self):
        cluster = make_cluster()
        results = []
        run_client(cluster, [Message("stat-image", name="tool")], results)
        assert results[0].kind == "image-stat"
        assert results[0]["image_bytes"] == 50 * 1024
        assert results[0]["device_bound"] is False

    def test_stat_unknown_image(self):
        cluster = make_cluster()
        results = []
        run_client(cluster, [Message("stat-image", name="ghost")], results)
        assert results[0].kind == "fs-error"

    def test_load_image_marks_target_pages(self):
        cluster = make_cluster()
        ws = cluster.workstations[0]
        from repro.kernel.process import Delay

        def idle():
            yield Delay(3_600_000_000)

        lh = ws.kernel.create_logical_host()
        space = ws.kernel.allocate_space(lh, 96 * 1024, name="target")
        pcb = ws.kernel.create_process(lh, idle(), name="target")
        results = []
        run_client(cluster, [
            Message("load-image", name="tool", target=pcb.pid),
        ], results)
        assert results[0].kind == "image-loaded"
        loaded_pages = sum(1 for p in space.pages if p.version > 0)
        assert loaded_pages == (50 * 1024) // 2048

    def test_load_unknown_image(self):
        cluster = make_cluster()
        from repro.kernel.ids import Pid

        results = []
        run_client(cluster, [
            Message("load-image", name="ghost", target=Pid(1, 1)),
        ], results)
        assert results[0].kind == "fs-error"

    def test_counters(self):
        cluster = make_cluster()
        fs = cluster.file_servers[0]
        from repro.kernel.process import Delay

        def idle():
            yield Delay(3_600_000_000)

        ws = cluster.workstations[0]
        lh = ws.kernel.create_logical_host()
        ws.kernel.allocate_space(lh, 96 * 1024)
        pcb = ws.kernel.create_process(lh, idle(), name="t")
        results = []
        run_client(cluster, [Message("load-image", name="tool", target=pcb.pid)],
                   results)
        assert fs.images_loaded == 1
        assert fs.bytes_served >= 50 * 1024
