"""Unit tests for the program manager's policies and bookkeeping."""

import pytest

from repro.cluster import build_cluster
from repro.execution import exec_and_wait, exec_program
from repro.ipc.messages import Message
from repro.kernel.process import Send
from repro.services.program_manager import AcceptPolicy
from repro.workloads import standard_registry


def make_cluster(n=3, scale=0.1, **kwargs):
    return build_cluster(n_workstations=n, registry=standard_registry(scale=scale),
                         **kwargs)


class TestAcceptPolicy:
    def test_willing_by_default(self):
        cluster = make_cluster()
        policy = AcceptPolicy()
        assert policy.willing(cluster.workstations[0], 64 * 1024)

    def test_memory_threshold(self):
        cluster = make_cluster()
        policy = AcceptPolicy(min_free_memory=10**9)
        assert not policy.willing(cluster.workstations[0], 0)

    def test_process_count_threshold(self):
        cluster = make_cluster()
        policy = AcceptPolicy(max_program_processes=0)
        assert not policy.willing(cluster.workstations[0], 0)

    def test_owner_active_refusal(self):
        cluster = make_cluster()
        ws = cluster.workstations[0]
        policy = AcceptPolicy(accept_when_owner_active=False)
        assert policy.willing(ws, 0)
        ws.owner_active = True
        assert not policy.willing(ws, 0)

    def test_owner_active_accepted_by_default(self):
        cluster = make_cluster()
        ws = cluster.workstations[0]
        ws.owner_active = True
        assert AcceptPolicy().willing(ws, 0)


class TestProgramRecords:
    def test_created_programs_are_recorded(self):
        cluster = make_cluster()

        def session(ctx):
            yield from exec_and_wait(ctx, "tex")

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=60_000_000)
        pm = cluster.pm("ws0")
        records = [r for r in pm.records.values() if r.name == "tex"]
        assert len(records) == 1
        assert records[0].exited
        assert records[0].exit_code == 0

    def test_exited_program_lh_is_reaped(self):
        cluster = make_cluster()
        seen = {}

        def session(ctx):
            pid, pm = yield from exec_program(ctx, "tex")
            seen["pid"] = pid
            from repro.execution import wait_for_program

            yield from wait_for_program(pm, pid)

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=60_000_000)
        lhid = seen["pid"].logical_host_id
        assert not cluster.workstations[0].kernel.hosts_lhid(lhid)

    def test_memory_returns_after_reap(self):
        cluster = make_cluster()
        ws = cluster.workstations[0]
        free_before = ws.kernel.memory_free

        def session(ctx):
            yield from exec_and_wait(ctx, "tex")

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=60_000_000)
        # Session lh remains (64 KB); program memory was released.
        assert ws.kernel.memory_free >= free_before - 64 * 1024


class TestPmOps:
    def test_query_programs_rows(self):
        cluster = make_cluster()
        rows_seen = []

        def session(ctx):
            pid, pm = yield from exec_program(ctx, "longsim", where="ws1")
            reply = yield Send(pm, Message("query-programs"))
            rows_seen.extend(reply["rows"])

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=30_000_000)
        assert any(r["name"] == "longsim" and r["remote"] for r in rows_seen)

    def test_kill_program_releases_waiters(self):
        cluster = make_cluster()
        outcome = {}

        def session(ctx):
            pid, pm = yield from exec_program(ctx, "longsim", where="ws1")
            outcome["pid"] = pid
            from repro.kernel.process import Delay

            yield Delay(1_000_000)  # let the waiter register first
            yield Send(pm, Message("kill-program", pid=pid))
            outcome["killed"] = True

        def waiter(ctx):
            from repro.execution import wait_for_program

            while "pid" not in outcome:
                from repro.kernel.process import Delay

                yield Delay(100_000)
            code = yield from wait_for_program(None, outcome["pid"])
            outcome["code"] = code

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.spawn_session(cluster.workstations[0], waiter, name="waiter")
        cluster.run(until_us=60_000_000)
        assert outcome.get("killed")
        assert outcome.get("code") == -1

    def test_suspend_stops_cpu_accumulation(self):
        cluster = make_cluster()
        state = {}

        def session(ctx):
            pid, pm = yield from exec_program(ctx, "longsim", where="ws1")
            state["pid"] = pid
            from repro.kernel.process import Delay

            yield Delay(2_000_000)
            yield Send(pm, Message("suspend-program", pid=pid))
            state["suspended_at"] = ctx.sim.now

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=10_000_000)
        pcb = cluster.workstations[1].kernel.find_pcb(state["pid"])
        cpu_at_suspend = pcb.cpu_used_us
        cluster.run(until_us=20_000_000)
        assert pcb.cpu_used_us == cpu_at_suspend

    def test_resume_restarts_execution(self):
        cluster = make_cluster()
        state = {}

        def session(ctx):
            pid, pm = yield from exec_program(ctx, "longsim", where="ws1")
            state["pid"] = pid
            from repro.kernel.process import Delay

            yield Delay(2_000_000)
            yield Send(pm, Message("suspend-program", pid=pid))
            yield Delay(2_000_000)
            yield Send(pm, Message("resume-program", pid=pid))

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=8_000_000)
        pcb = cluster.workstations[1].kernel.find_pcb(state["pid"])
        cpu_before = pcb.cpu_used_us
        cluster.run(until_us=12_000_000)
        assert pcb.cpu_used_us > cpu_before

    def test_unknown_op_replies_error(self):
        cluster = make_cluster()
        got = []

        def session(ctx):
            reply = yield Send(
                cluster.pm("ws0").pcb.pid, Message("defragment-disk")
            )
            got.append(reply.kind)

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=10_000_000)
        assert got == ["pm-error"]

    def test_create_env_and_destroy_env(self):
        cluster = make_cluster()
        got = []

        def session(ctx):
            pm_pid = cluster.pm("ws1").pcb.pid
            created = yield Send(pm_pid, Message("create-env", space_bytes=32768))
            got.append(created.kind)
            destroyed = yield Send(pm_pid, Message("destroy-env",
                                                   lhid=created["lhid"]))
            got.append(destroyed.kind)

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=10_000_000)
        assert got == ["env-created", "ok"]

    def test_out_of_memory_creation_fails_cleanly(self):
        cluster = make_cluster()
        got = []

        def session(ctx):
            pm_pid = cluster.pm("ws1").pcb.pid
            reply = yield Send(pm_pid, Message("create-env", space_bytes=10**9))
            got.append(reply.kind)

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=10_000_000)
        assert got == ["pm-error"]

    def test_lhids_listing_helpers(self):
        cluster = make_cluster()
        state = {}

        def session(ctx):
            pid, pm = yield from exec_program(ctx, "longsim", where="ws1")
            state["pid"] = pid

        cluster.spawn_session(cluster.workstations[0], session)
        while "pid" not in state and cluster.sim.peek() is not None:
            cluster.sim.run(until_us=cluster.sim.now + 100_000)
        cluster.run(until_us=cluster.sim.now + 500_000)  # still mid-run
        pm = cluster.pm("ws1")
        assert state["pid"].logical_host_id in pm.remote_program_lhids()
        assert state["pid"].logical_host_id in pm.program_lhids()


class TestSystemHostProtection:
    def _ops_against(self, cluster, make_msg):
        got = []

        def session(ctx):
            reply = yield Send(cluster.pm("ws1").pcb.pid, make_msg())
            got.append(reply)

        cluster.spawn_session(cluster.workstations[0], session, name="attacker")
        cluster.run(until_us=20_000_000)
        return got[0]

    def test_cannot_kill_the_kernel_server_host(self):
        from repro.kernel.ids import Pid

        cluster = make_cluster()
        ks_pid = cluster.workstations[1].kernel_server_pid
        reply = self._ops_against(
            cluster, lambda: Message("kill-program", pid=ks_pid)
        )
        assert reply.kind == "pm-error"
        assert cluster.workstations[1].kernel.kernel_server_pcb.alive

    def test_cannot_destroy_env_of_a_service(self):
        cluster = make_cluster()
        display_lhid = (
            cluster.displays["ws1"].pcb.logical_host.lhid
        )
        reply = self._ops_against(
            cluster, lambda: Message("destroy-env", lhid=display_lhid)
        )
        assert reply.kind == "pm-error"
        assert cluster.displays["ws1"].pcb.alive

    def test_cannot_migrate_the_program_manager(self):
        cluster = make_cluster()
        pm_pid = cluster.pm("ws1").pcb.pid
        reply = self._ops_against(
            cluster,
            lambda: Message("migrate-out", pid=pm_pid,
                            destroy_if_stranded=False, dest_pm=None,
                            max_attempts=1),
        )
        assert reply.kind == "pm-error"
        assert "system host" in reply["error"]
