"""Tests for network-transparent debugging (paper §6).

"Even the V debugger can debug local and remote programs with no
change" -- including, here, a program that migrates mid-session.
"""

import pytest

from repro.cluster import build_cluster
from repro.execution import exec_program
from repro.migration.migrateprog import migrate_program
from repro.services.debugger import DebugError, DebugSession
from repro.workloads import standard_registry


def make_world(where="ws1"):
    cluster = build_cluster(n_workstations=3, seed=6,
                            registry=standard_registry(scale=0.5))
    holder = {}

    def session(ctx):
        pid, pm = yield from exec_program(ctx, "longsim", where=where)
        holder["pid"] = pid

    cluster.spawn_session(cluster.workstations[0], session)
    while "pid" not in holder and cluster.sim.peek() is not None:
        cluster.sim.run(until_us=cluster.sim.now + 100_000)
    return cluster, holder["pid"]


def run_debugger(cluster, body_factory):
    """Run a debugger body as a session on ws0."""
    out = {}

    def wrapper(ctx):
        yield from body_factory(ctx, out)

    cluster.spawn_session(cluster.workstations[0], wrapper, name="debugger")
    return out


def test_attach_freezes_progress_and_detach_resumes():
    cluster, target = make_world()

    def debugger(ctx, out):
        session = DebugSession(target)
        yield from session.attach()
        before = yield from session.inspect()
        from repro.kernel.process import Delay

        yield Delay(3_000_000)
        after = yield from session.inspect()
        out["cpu_delta"] = after.cpu_used_us - before.cpu_used_us
        out["state"] = after.state
        yield from session.detach()
        yield Delay(2_000_000)
        resumed = yield from session.inspect()
        out["resumed_delta"] = resumed.cpu_used_us - after.cpu_used_us

    out = run_debugger(cluster, debugger)
    cluster.run(until_us=60_000_000)
    assert out["cpu_delta"] == 0            # attached: no progress
    assert out["state"] == "suspended"
    assert out["resumed_delta"] > 1_000_000  # detached: running again


def test_memory_inspection_via_copyfrom():
    cluster, target = make_world()
    cluster.run(until_us=cluster.sim.now + 2_000_000)

    def debugger(ctx, out):
        session = DebugSession(target)
        yield from session.attach()
        pages = yield from session.read_pages([0, 1, 2, 3])
        out["versions"] = [p.version for p in pages]
        yield from session.detach()

    out = run_debugger(cluster, debugger)
    cluster.run(until_us=30_000_000)
    # The image pages were written at load: nonzero versions visible.
    assert len(out["versions"]) == 4
    assert all(v >= 1 for v in out["versions"])


def test_same_session_works_across_a_migration():
    """Debug, migrate the target, keep debugging: the session's handle is
    the pid, and the pid survives (the paper's network-transparency claim
    taken to its logical conclusion)."""
    cluster, target = make_world()

    def debugger(ctx, out):
        from repro.kernel.process import Delay

        session = DebugSession(target)
        snap1 = yield from session.inspect()
        out["before"] = snap1.name
        # ... migration happens elsewhere during this delay ...
        while "migrated" not in out:
            yield Delay(200_000)
        snap2 = yield from session.inspect()
        out["after"] = snap2.name
        yield from session.attach()
        held = yield from session.inspect()
        out["held_state"] = held.state
        yield from session.detach()

    out = run_debugger(cluster, debugger)
    replies = []

    def migrator(ctx):
        reply = yield from migrate_program(target)
        replies.append(reply)
        out["migrated"] = True

    cluster.spawn_session(cluster.workstations[0], migrator, name="mig")
    cluster.run(until_us=120_000_000)
    assert replies and replies[0]["ok"]
    assert out["before"] == out["after"] == "longsim"
    assert out["held_state"] == "suspended"


def test_debug_error_on_dead_target():
    from repro.kernel.ids import Pid

    cluster, target = make_world()
    ghost = Pid(target.logical_host_id, 0x55)
    caught = []

    def debugger(ctx, out):
        session = DebugSession(ghost)
        try:
            yield from session.inspect()
        except DebugError as exc:
            caught.append(str(exc))

    run_debugger(cluster, debugger)
    cluster.run(until_us=30_000_000)
    assert caught and "no such process" in caught[0]


def test_kill_via_debugger():
    cluster, target = make_world()
    done = []

    def debugger(ctx, out):
        session = DebugSession(target)
        yield from session.kill()
        done.append(True)

    run_debugger(cluster, debugger)
    cluster.run(until_us=30_000_000)
    assert done
    assert cluster.workstations[1].kernel.find_pcb(target) is None
