"""Adaptive pre-copy termination (``COPY_PLANE.adaptive_precopy``).

The static policy freezes as soon as one round fails to halve the dirty
set.  On a *phased* workload -- a heavy write phase that ends during the
first copy round, leaving a small hot set -- that freezes a large
residual one round too early.  The adaptive controller projects the next
round's residual from the observed dirty rate and keeps copying while
the projection shrinks, so it rides out the phase change and freezes a
tiny residual at nearly the same total cost.
"""

import pytest

from repro.config import PAGE_SIZE
from repro.kernel import Compute, Delay, Priority, TouchPages
from repro.migration.manager import run_migration
from repro.migration.precopy import AdaptivePrecopy, PrecopyPolicy

from tests.helpers import make_cluster


class TestAdaptiveController:
    def test_stops_at_residual_threshold(self):
        ctl = AdaptivePrecopy(PrecopyPolicy(residual_threshold_bytes=16 * PAGE_SIZE))
        assert ctl.decide(16, 100, 1_000_000, 1)
        assert ctl.reason == "residual-threshold"

    def test_continues_while_projection_shrinks(self):
        ctl = AdaptivePrecopy(PrecopyPolicy(residual_threshold_bytes=0))
        # 60 dirty after a 100-page round projects 36 next round: the
        # static policy would stop here (60% > 50%); adaptive continues.
        assert not ctl.decide(60, 100, 1_000_000, 2)
        assert ctl.projected == pytest.approx(36.0)
        assert ctl.rate_pps == pytest.approx(60.0)

    def test_stops_when_no_significant_reduction(self):
        ctl = AdaptivePrecopy(PrecopyPolicy(residual_threshold_bytes=0,
                                            adaptive_margin=0.95))
        # 98 dirty after a 100-page round: another round buys nothing.
        assert ctl.decide(98, 100, 1_000_000, 2)
        assert ctl.reason == "no-significant-reduction"

    def test_stops_at_adaptive_round_cap(self):
        ctl = AdaptivePrecopy(PrecopyPolicy(residual_threshold_bytes=0,
                                            adaptive_max_rounds=4))
        assert ctl.decide(10, 1000, 1_000_000, 4)
        assert ctl.reason == "max-rounds"


N_PAGES = 256
HEAVY_PAGES = 160  # distinct pages the heavy phase keeps re-dirtying
HOT = tuple(range(200, 204))  # steady-state hot set, under the threshold


def _migrate_phased_hog(toggles=None):
    """Migrate a phased hog; returns its MigrationStats."""
    cluster = make_cluster(3, seed=5, full=True, toggles=toggles)
    sim = cluster.sim
    kernel = cluster.workstations[1].kernel
    lh = kernel.create_logical_host()
    kernel.allocate_space(lh, N_PAGES * PAGE_SIZE, name="hog")

    def victim():
        # Heavy phase: sweep a 160-page window so every scan during it
        # sees ~160 dirty pages.  Ends at 1.6 s -- inside copy round 0
        # (0.2 s .. ~1.75 s) -- leaving only the 4-page hot set.
        window = 0
        while sim.now < 1_600_000:
            yield Compute(3_000)
            yield TouchPages(range(window, window + 16))
            window = (window + 16) % HEAVY_PAGES
        while True:
            yield Compute(3_000)
            yield TouchPages(HOT)

    kernel.create_process(lh, victim(), priority=Priority.LOCAL, name="hog")
    results = []

    def mgr():
        yield Delay(200_000)
        stats = yield from run_migration(kernel, lh)
        results.append(stats)

    kernel.create_process(
        cluster.pm("ws1").pcb.logical_host, mgr(),
        priority=Priority.MIGRATION, name="mgr",
    )
    while not results and sim.peek() is not None:
        sim.run(until_us=sim.now + 500_000)
    assert results, "migration never completed"
    assert results[0].success, results[0].error
    return results[0]


def test_adaptive_rides_out_the_phase_change():
    static = _migrate_phased_hog()
    adaptive = _migrate_phased_hog(toggles={"adaptive_precopy": True})

    # The static policy froze right after the phase change with the
    # heavy-phase residue still dirty; adaptive copied one more round
    # while running and froze only the hot set.
    assert static.precopy_rounds == 1
    assert adaptive.precopy_rounds >= 2
    assert adaptive.freeze_us < static.freeze_us / 5
    # ... without re-copying meaningfully more data overall.
    static_pages = sum(r.pages for r in static.rounds) + static.residual_pages
    adaptive_pages = (
        sum(r.pages for r in adaptive.rounds) + adaptive.residual_pages
    )
    assert adaptive_pages <= static_pages * 1.1
    assert adaptive.adaptive and not static.adaptive
    assert adaptive.stop_reason == "residual-threshold"
    assert static.stop_reason is None
