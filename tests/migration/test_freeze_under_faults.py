"""Regression: ``MigrationStats.freeze_us`` equals the traced freeze
span, even when packet loss forces retransmissions during the residual
copy.

The freeze span is opened the instant ``freeze_started_at`` is taken
and closed exactly where ``freeze_us`` accumulates, so the two must
agree to the microsecond.  An earlier accounting bug (freeze clock
started before the trace span) only showed up when the residual copy
stalled on retransmissions -- hence the lossy variants here."""

from repro.faults.models import (
    DropFault,
    DuplicateFault,
    FaultPlane,
    ReorderFault,
)
from repro.kernel import Compute, Delay, Priority, Touch
from repro.migration.manager import run_migration

from tests.helpers import make_cluster


def _migrate_under(plane, seed=2):
    """Migrate a busy 128 KB program off ws1 with tracing on; returns
    (stats, freeze_spans)."""
    cluster = make_cluster(3, seed=seed, full=True, faults=plane)
    sim = cluster.sim
    sim.trace.enable("migration")

    kernel = cluster.workstations[1].kernel
    lh = kernel.create_logical_host()
    kernel.allocate_space(lh, 128 * 1024, name="victim")

    def victim():
        while True:
            yield Compute(3_000)
            yield Touch(0, 32 * 1024)  # keep dirtying: non-empty residual

    kernel.create_process(lh, victim(), priority=Priority.LOCAL,
                          name="victim")
    results = []

    def mgr():
        yield Delay(200_000)
        stats = yield from run_migration(
            kernel, lh, max_attempts=3, retry_backoff_us=50_000
        )
        results.append(stats)

    kernel.create_process(
        cluster.pm("ws1").pcb.logical_host, mgr(),
        priority=Priority.MIGRATION, name="mgr",
    )
    while not results and sim.peek() is not None:
        sim.run(until_us=sim.now + 500_000)
    assert results, "migration never completed"
    return results[0], sim.trace.find_spans("migration", "freeze")


def _check_freeze_pin(stats, spans):
    assert stats.success, stats.error
    assert stats.freeze_us > 0
    closed = [s for s in spans if s.end_us is not None]
    assert closed, "no freeze span was traced"
    # One span per attempt that reached the freeze step; their summed
    # durations are exactly the accumulated freeze clock.
    assert sum(s.duration_us for s in closed) == stats.freeze_us


def test_freeze_span_matches_stats_on_a_clean_network():
    stats, spans = _migrate_under(plane=None)
    _check_freeze_pin(stats, spans)
    assert len(spans) == 1
    assert stats.attempts == 1


def test_freeze_span_matches_stats_under_loss_during_residual_copy():
    plane = FaultPlane([DropFault(0.15)])
    stats, spans = _migrate_under(plane)
    _check_freeze_pin(stats, spans)
    assert plane.dropped > 0, "the drop model never fired"
    # Retransmissions during the frozen residual copy stretch the
    # freeze window past the clean-network run of the same seed.
    clean_stats, _ = _migrate_under(plane=None)
    assert stats.freeze_us > clean_stats.freeze_us


def test_freeze_span_matches_stats_under_duplication_and_reordering():
    plane = FaultPlane([DuplicateFault(0.2), ReorderFault(0.2)])
    stats, spans = _migrate_under(plane)
    _check_freeze_pin(stats, spans)
    assert plane.duplicated + plane.reordered > 0
