"""Unit tests for migration internals: stats, policy, descriptors."""

import pytest

from repro.config import PAGE_SIZE
from repro.errors import NotMigratableError
from repro.kernel import AddressSpace, LogicalHost, Pcb
from repro.kernel.ids import Pid
from repro.migration.precopy import PrecopyPolicy
from repro.migration.stats import MigrationStats, RoundStats
from repro.migration.transfer import (
    process_descriptors,
    space_descriptors,
    space_representatives,
)


class TestPrecopyPolicy:
    def test_stops_at_small_residual(self):
        policy = PrecopyPolicy(residual_threshold_bytes=8 * PAGE_SIZE,
                               min_reduction=0.5, max_rounds=10)
        assert policy.should_stop(dirty_pages=8, previous_pages=100, rounds_done=1)
        assert not policy.should_stop(dirty_pages=9, previous_pages=100, rounds_done=1)

    def test_stops_when_no_significant_reduction(self):
        policy = PrecopyPolicy(residual_threshold_bytes=0, min_reduction=0.5,
                               max_rounds=10)
        # 60 dirty after a 100-page round: shrunk to 60% > 50% -> stop.
        assert policy.should_stop(dirty_pages=60, previous_pages=100, rounds_done=2)
        # 40 dirty after 100: good reduction -> continue.
        assert not policy.should_stop(dirty_pages=40, previous_pages=100,
                                      rounds_done=2)

    def test_stops_at_max_rounds(self):
        policy = PrecopyPolicy(residual_threshold_bytes=0, min_reduction=0.0,
                               max_rounds=3)
        assert policy.should_stop(dirty_pages=1000, previous_pages=10000,
                                  rounds_done=3)

    def test_from_model_reads_calibration(self):
        from repro.config import DEFAULT_MODEL

        policy = PrecopyPolicy.from_model(DEFAULT_MODEL)
        assert policy.residual_threshold_bytes == DEFAULT_MODEL.precopy_residual_threshold_bytes
        assert policy.max_rounds == DEFAULT_MODEL.precopy_max_rounds


class TestMigrationStats:
    def test_round_accumulation(self):
        stats = MigrationStats(lhid=5)
        stats.add_round(100, 300_000)
        stats.add_round(10, 30_000)
        assert stats.precopy_rounds == 2
        assert stats.rounds[0].bytes == 100 * PAGE_SIZE
        assert stats.total_copied_bytes == 110 * PAGE_SIZE

    def test_residual_included_in_total(self):
        stats = MigrationStats(lhid=5)
        stats.add_round(100, 300_000)
        stats.residual_pages = 7
        assert stats.total_copied_bytes == 107 * PAGE_SIZE
        assert stats.residual_bytes == 7 * PAGE_SIZE

    def test_summary_strings(self):
        stats = MigrationStats(lhid=0x42)
        stats.error = "no candidate host"
        assert "FAILED" in stats.summary()
        stats.success = True
        stats.dest_host = "ws3"
        stats.freeze_us = 50_000
        assert "ws3" in stats.summary()
        assert "50.0 ms" in stats.summary()

    def test_round_stats_bytes(self):
        assert RoundStats(0, 3, 1000).bytes == 3 * PAGE_SIZE


def _parked():
    from repro.kernel.process import Delay

    yield Delay(10**9)


def make_lh(n_spaces=1, procs_per_space=1):
    lh = LogicalHost(0x99)
    for s in range(n_spaces):
        space = AddressSpace(PAGE_SIZE * 4, name=f"s{s}")
        lh.add_space(space)
        for p in range(procs_per_space):
            index = lh.allocate_index()
            pcb = Pcb(Pid(0x99, index), lh, space, _parked(), name=f"p{s}.{p}")
            lh.processes[index] = pcb
    return lh


class TestDescriptors:
    def test_space_descriptors_shape(self):
        lh = make_lh(n_spaces=2)
        descs = space_descriptors(lh)
        assert len(descs) == 2
        assert descs[0] == (PAGE_SIZE * 4, 0, 0, "s0")

    def test_process_descriptors_reference_space_ordinals(self):
        lh = make_lh(n_spaces=2, procs_per_space=2)
        descs = process_descriptors(lh)
        assert len(descs) == 4
        ordinals = {d[1] for d in descs}
        assert ordinals == {0, 1}

    def test_representatives_cover_every_space(self):
        lh = make_lh(n_spaces=3, procs_per_space=1)
        reps = space_representatives(lh)
        assert set(reps) == {0, 1, 2}

    def test_space_without_process_is_not_migratable(self):
        lh = make_lh(n_spaces=1, procs_per_space=1)
        lh.add_space(AddressSpace(PAGE_SIZE, name="orphan"))
        with pytest.raises(NotMigratableError):
            space_representatives(lh)

    def test_foreign_space_process_is_not_migratable(self):
        lh = make_lh()
        foreign = AddressSpace(PAGE_SIZE, name="foreign")
        index = lh.allocate_index()
        pcb = Pcb(Pid(0x99, index), lh, foreign, _parked(), name="alien")
        lh.processes[index] = pcb
        with pytest.raises(NotMigratableError):
            process_descriptors(lh)


class TestResidualDependencies:
    def test_global_server_use_is_not_a_dependency(self):
        from repro.execution import ProgramRegistry
        from repro.migration.residual import residual_dependencies

        from tests.helpers import make_cluster

        cluster = make_cluster(2, full=True, registry=ProgramRegistry())
        ws0 = cluster.workstations[0]
        lh = ws0.kernel.create_logical_host()
        ws0.kernel.allocate_space(lh, 8192)
        # The program contacted only the (remote) file server and its own
        # kernel server via the local group.
        lh.contacted_pids.add(cluster.file_servers[0].pcb.pid)
        from repro.kernel.ids import local_kernel_server_group

        lh.contacted_pids.add(local_kernel_server_group(lh.lhid))
        assert residual_dependencies(lh, ws0) == []

    def test_local_server_use_is_flagged(self):
        from repro.execution import ProgramRegistry
        from repro.migration.residual import residual_dependencies
        from repro.services.file_server import FileServer, install_file_server

        from tests.helpers import make_cluster

        cluster = make_cluster(2, full=True, registry=ProgramRegistry())
        ws0 = cluster.workstations[0]
        # A file server running ON the workstation (the paper's warning
        # case: local servers create residual dependencies).
        local_fs = install_file_server(ws0, cluster.registry, name="local-fs")
        lh = ws0.kernel.create_logical_host()
        ws0.kernel.allocate_space(lh, 8192)
        lh.contacted_pids.add(local_fs.pcb.pid)
        deps = residual_dependencies(lh, ws0)
        assert len(deps) == 1
        assert deps[0].pid == local_fs.pcb.pid
        assert deps[0].co_resident
