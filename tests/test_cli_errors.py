"""Error paths of the ``sweep``, ``chaos`` and ``verify`` subcommands:
bad input must exit 2 with a diagnostic on stderr (never a traceback),
and a failing campaign must exit 1."""

import json

from repro.__main__ import main


class TestSweepErrors:
    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["sweep", "--scenario", "nonesuch"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario 'nonesuch'" in err
        assert "ping" in err  # the known names are listed

    def test_malformed_set_without_equals_exits_2(self, capsys):
        assert main(["sweep", "--scenario", "ping",
                     "--set", "count"]) == 2
        assert "bad --set 'count'" in capsys.readouterr().err

    def test_malformed_set_with_empty_values_exits_2(self, capsys):
        assert main(["sweep", "--scenario", "ping",
                     "--set", "count="]) == 2
        assert "bad --set" in capsys.readouterr().err

    def test_malformed_set_with_empty_key_exits_2(self, capsys):
        assert main(["sweep", "--scenario", "ping",
                     "--set", "=5"]) == 2
        assert "bad --set" in capsys.readouterr().err

    def test_zero_replications_exits_2(self, capsys):
        assert main(["sweep", "--scenario", "ping",
                     "--replications", "0"]) == 2
        assert "at least one replication" in capsys.readouterr().err


class TestChaosErrors:
    def test_unknown_schedule_exits_2(self, capsys):
        assert main(["chaos", "--schedules", "drop,gremlins",
                     "--seeds", "1"]) == 2
        err = capsys.readouterr().err
        assert "unknown fault schedule 'gremlins'" in err
        # The diagnostic teaches the valid vocabulary.
        for name in ("drop", "burst", "crash", "mixed"):
            assert name in err

    def test_zero_seeds_exits_2(self, capsys):
        assert main(["chaos", "--schedules", "drop", "--seeds", "0"]) == 2
        assert "at least one replication" in capsys.readouterr().err

    def test_unwritable_out_exits_2(self, tmp_path, capsys):
        rc = main(["chaos", "--schedules", "drop", "--seeds", "1",
                   "--messages", "10",
                   "--out", str(tmp_path / "no" / "dir" / "x.json")])
        assert rc == 2
        assert "cannot write" in capsys.readouterr().err


class TestVerifyErrors:
    def test_unknown_toggle_exits_2(self, capsys):
        assert main(["verify", "--toggle", "warp_drive=on"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("verify: ")
        assert "warp_drive" in err

    def test_toggle_without_value_exits_2(self, capsys):
        assert main(["verify", "--toggle", "event_wheel"]) == 2
        err = capsys.readouterr().err
        assert "NAME=on|off" in err

    def test_malformed_copy_plane_exits_2(self, capsys):
        assert main(["verify", "--copy-plane", "sideways"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("verify: ")
        for mode in ("off", "burst", "adaptive", "both"):
            assert mode in err  # the diagnostic teaches the vocabulary

    def test_unknown_mutation_exits_2(self, capsys):
        assert main(["verify", "--mutate", "no-such-bug"]) == 2
        assert "skip-same-instant-cancel" in capsys.readouterr().err

    def test_unwritable_report_exits_2(self, tmp_path, capsys):
        rc = main(["verify", "--matrix", "sample:2", "--messages", "3",
                   "--report", str(tmp_path / "no" / "dir" / "x.json")])
        assert rc == 2
        assert "cannot write" in capsys.readouterr().err

    def test_broken_rebinding_campaign_exits_1(self, capsys):
        rc = main(["chaos", "--schedules", "drop", "--seeds", "1",
                   "--messages", "20", "--seed", "42",
                   "--break-rebinding"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "verdict: FAIL" in out
        assert "no-residual-dependency" in out


class TestChaosHappyPath:
    def test_small_campaign_exits_0_and_writes_payload(self, tmp_path,
                                                       capsys):
        out_file = tmp_path / "chaos.json"
        rc = main(["chaos", "--schedules", "drop,reorder", "--seeds", "2",
                   "--messages", "10", "--seed", "3",
                   "--out", str(out_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verdict: PASS (0 violation(s))" in out
        payload = json.loads(out_file.read_text())
        rows = payload["results"]
        assert len(rows) == 2  # one row list per schedule
        for row in rows:
            assert len(row) == 2  # one run per seed
            for run in row:
                assert run["invariants_ok"]
