"""The comparison-CLI exit-code contract (S1): ``repro diff`` and
``repro verify`` share one set of codes, defined in one place
(:mod:`repro.obs.diff`): 0 compared clean, 1 compared different, 2
never compared (usage error)."""

import json

from repro.__main__ import main
from repro.obs.diff import EXIT_DIFFERENT, EXIT_OK, EXIT_USAGE
from repro.obs.report import new_report, write_report

SMALL = ["--messages", "3"]


def test_the_constants_are_the_documented_contract():
    assert (EXIT_OK, EXIT_DIFFERENT, EXIT_USAGE) == (0, 1, 2)


def _report(path, events):
    report = new_report("test", seed=0)
    report["kpis"] = {"events": events}
    write_report(report, str(path))
    return str(path)


def test_diff_exit_codes(tmp_path):
    a = _report(tmp_path / "a.json", 100)
    same = _report(tmp_path / "same.json", 100)
    moved = _report(tmp_path / "moved.json", 200)
    assert main(["diff", a, same]) == EXIT_OK
    assert main(["diff", a, moved]) == EXIT_DIFFERENT
    assert main(["diff", a, str(tmp_path / "missing.json")]) == EXIT_USAGE


def test_verify_exit_ok_on_clean_matrix(tmp_path, capsys):
    out = tmp_path / "verify.json"
    code = main(["verify", "--matrix", "sample:2", "--seed", "3",
                 "--out", str(out)] + SMALL)
    assert code == EXIT_OK
    payload = json.loads(out.read_text())
    assert payload["ok"] and len(payload["cells"]) == 2


def test_verify_exit_different_on_planted_mutation(tmp_path):
    code = main(["verify", "--matrix", "sample:2", "--seed", "3",
                 "--mutate", "skip-same-instant-cancel",
                 "--no-minimize"] + SMALL)
    assert code == EXIT_DIFFERENT


def test_verify_expect_fail_inverts_the_gate(tmp_path):
    failing = main(["verify", "--matrix", "sample:2", "--seed", "3",
                    "--mutate", "skip-same-instant-cancel", "--expect-fail",
                    "--postmortem", str(tmp_path / "pm")] + SMALL)
    assert failing == EXIT_OK
    clean = main(["verify", "--matrix", "sample:2", "--seed", "3",
                  "--expect-fail"] + SMALL)
    assert clean == EXIT_DIFFERENT


def test_verify_usage_errors_exit_2(tmp_path, capsys):
    cases = [
        ["verify", "--matrix", "bogus"],
        ["verify", "--matrix", "sample:x"],
        ["verify", "--toggle", "warp_drive=on"],
        ["verify", "--toggle", "event_wheel"],
        ["verify", "--copy-plane", "sideways"],
        ["verify", "--mutate", "no-such-bug"],
        ["verify", "--replay", str(tmp_path / "not-a-bundle")],
    ]
    for argv in cases:
        assert main(argv) == EXIT_USAGE, argv
        assert capsys.readouterr().err.startswith("verify: ")


def test_verify_unwritable_out_exits_2(tmp_path, capsys):
    code = main(["verify", "--matrix", "sample:2", "--seed", "3",
                 "--out", str(tmp_path / "no" / "dir" / "x.json")] + SMALL)
    assert code == EXIT_USAGE
    assert "cannot write" in capsys.readouterr().err
