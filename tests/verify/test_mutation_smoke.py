"""Mutation smoke: the harness must catch the planted ordering bug.

``skip-same-instant-cancel`` makes the hybrid event core "forget" to
cancel timers due at the current instant, so stale continuations fire
as counted events and the wheel core's trajectory diverges from the
reference heap.  The explorer must flag exactly the ``event_wheel``
cells, and the minimizer must shrink the widest failing cell to the
single-knob delta ``{event_wheel: True}`` with an empty (<= 5 swap)
perturbation trace -- the acceptance criterion of the harness.
"""

import pytest

from repro.errors import SimulationError
from repro.obs.flight_recorder import load_postmortem
from repro.verify import (
    build_matrix,
    dump_repro,
    minimize_failure,
    planted_mutation,
    replay_bundle,
    run_matrix,
)
from repro.verify.minimize import _shrink_trace
from repro.verify.scenario import verify_cell

SMALL = {"messages": 4, "storm_rounds": 12, "migrate_at_ms": 200}
MUT = "skip-same-instant-cancel"

BASE_CONFIG = {
    "base_seed": 11,
    "scenario": "ordering",
    "scenario_config": SMALL,
    "mutation": MUT,
    "toggles": {},
    "perturb": None,
}


def _mutated_matrix():
    cells = build_matrix("sample:8", seed=11)
    return cells, run_matrix(cells, base_seed=11, scenario_config=SMALL,
                             mutation=MUT)


def test_mutation_diverges_only_on_the_wheel_core():
    clean = verify_cell({"base_seed": 11, "scenario_config": SMALL}, 0)
    heap = verify_cell({"base_seed": 11, "scenario_config": SMALL,
                        "mutation": MUT}, 0)
    wheel = verify_cell({"base_seed": 11, "scenario_config": SMALL,
                         "mutation": MUT,
                         "toggles": {"event_wheel": True}}, 0)
    # The bug is wheel-specific: the heap core is the unharmed reference.
    assert heap["payload_sha256"] == clean["payload_sha256"]
    assert wheel["payload_sha256"] != clean["payload_sha256"]
    # Stale fires are inert no-ops, so only the event count moves.
    assert wheel["kpis"]["events"] > clean["kpis"]["events"]
    assert wheel["stable"] == clean["stable"]


def test_explorer_flags_exactly_the_event_wheel_cells():
    cells, result = _mutated_matrix()
    assert not result.ok
    flagged = {f["index"] for f in result.failures}
    wheel = {i for i, c in enumerate(cells)
             if c["toggles"].get("event_wheel")}
    assert flagged == wheel and wheel
    for failure in result.failures:
        assert failure["expect"] == "byte"
        assert any("digest differs" in r for r in failure["reasons"])


def test_minimizer_shrinks_to_a_single_knob():
    cells, result = _mutated_matrix()
    widest = max(result.failures,
                 key=lambda f: len(cells[f["index"]]["toggles"]))
    cell = cells[widest["index"]]
    assert len(cell["toggles"]) >= 2  # there is something to shrink
    minimal = minimize_failure(cell, dict(BASE_CONFIG), result.results[0])
    assert minimal.cell["toggles"] == {"event_wheel": True}
    trace = (minimal.cell["perturb"] or {}).get("replay") or []
    assert len(trace) <= 5
    assert minimal.dropped_toggles  # it really reduced something


def test_minimal_repro_round_trips_through_a_bundle(tmp_path):
    cells, result = _mutated_matrix()
    cell = cells[result.failures[0]["index"]]
    minimal = minimize_failure(cell, dict(BASE_CONFIG), result.results[0])
    bundle = dump_repro(minimal, str(tmp_path / "repro"))

    manifest = load_postmortem(bundle)["manifest"]
    assert manifest["mutations"] == [MUT]
    repro = manifest["context"]["verify_repro"]
    assert repro["toggles"] == {"event_wheel": True}
    assert repro["mutation"] == MUT

    verdict = replay_bundle(bundle)
    assert verdict["still_fails"]
    assert any("digest differs" in r for r in verdict["reasons"])


def test_minimizer_refuses_a_passing_cell():
    cells = build_matrix("sample:8", seed=11)
    result = run_matrix(cells, base_seed=11, scenario_config=SMALL)
    assert result.ok
    config = dict(BASE_CONFIG, mutation=None)
    with pytest.raises(SimulationError):
        minimize_failure(cells[1], config, result.results[0])


def test_planted_mutation_context_manager_clears_on_exit():
    from repro.sim.engine import _PLANTED
    from repro.verify import planted

    with planted_mutation(MUT):
        assert planted() == [MUT]
        assert _PLANTED.skip_same_instant_cancel
    assert planted() == []


def test_ddmin_finds_the_minimal_swap_set():
    """The trace reducer on a synthetic failure predicate: the cell
    fails iff swaps {21, 34} are both replayed.  ddmin must land on
    exactly that pair regardless of the other 18 recorded swaps."""

    class FakeProber:
        probes = 0

        def failure(self, cell):
            self.probes += 1
            replay = set((cell["perturb"] or {}).get("replay") or [])
            return ["boom"] if {21, 34} <= replay else []

    from repro.verify.matrix import make_cell

    full_trace = list(range(1, 41, 2))  # odd ordinals 1..39, incl. 21
    full_trace.append(34)
    cell = make_cell(perturb={"seed": 0, "rate": 0.0,
                              "replay": sorted(full_trace)})
    shrunk, dropped = _shrink_trace(cell, FakeProber())
    assert sorted(shrunk["perturb"]["replay"]) == [21, 34]
    assert dropped == len(full_trace) - 2
