"""The schedule perturbation engine: off by default, byte-identical at
rate 0, deterministic under replay, heap-core-only."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator
from repro.sim.engine import arm_perturber
from repro.verify import TiePerturber
from repro.verify.scenario import verify_cell

SMALL = {"messages": 4, "storm_rounds": 12, "migrate_at_ms": 200}


def _cell(**overrides):
    config = {"base_seed": 11, "scenario_config": SMALL}
    config.update(overrides)
    return verify_cell(config, 0)


# ------------------------------------------------------------- default off

def test_no_perturber_installed_by_default():
    sim = Simulator(seed=0)
    assert sim._perturber is None


def test_hook_compiled_in_is_byte_identical_when_off():
    """A/B for the acceptance criterion: with the hook present but no
    perturber installed (a) and with a perturber installed that never
    takes a swap (b), trajectories are byte-identical -- the hook's only
    observable cost is the attribute test."""
    a = _cell()
    b = _cell(perturb={"seed": 5, "rate": 0.0})
    assert a["crash"] is None and b["crash"] is None
    assert b["perturb"]["swaps"] == []
    assert b["perturb"]["opportunities"] > 0  # ties existed to decline
    assert a["payload_sha256"] == b["payload_sha256"]


def test_zero_rate_replays_across_event_cores_too():
    wheel = _cell(toggles={"event_wheel": True})
    heap = _cell()
    assert wheel["payload_sha256"] == heap["payload_sha256"]


# ---------------------------------------------------------- perturbation on

def test_fuzzing_changes_the_trajectory_but_not_outcomes():
    base = _cell()
    fuzzed = _cell(perturb={"seed": 3, "rate": 0.5})
    assert fuzzed["crash"] is None
    assert fuzzed["perturb"]["swaps"], "rate 0.5 never found a tie to swap"
    # The trajectory moved...
    assert fuzzed["payload_sha256"] != base["payload_sha256"]
    # ...but the protocol outcome did not (the §3.1-3.2 commutation).
    assert fuzzed["invariants_ok"]
    assert fuzzed["stable"] == base["stable"]


def test_same_seed_same_trajectory():
    a = _cell(perturb={"seed": 9, "rate": 0.5})
    b = _cell(perturb={"seed": 9, "rate": 0.5})
    assert a["payload_sha256"] == b["payload_sha256"]
    assert a["perturb"] == b["perturb"]


def test_replaying_the_recorded_trace_reproduces_the_fuzz_run():
    fuzz = _cell(perturb={"seed": 4, "rate": 0.4})
    assert fuzz["perturb"]["swaps"]
    replay = _cell(perturb={"seed": 0, "rate": 0.0,
                            "replay": fuzz["perturb"]["swaps"]})
    assert replay["payload_sha256"] == fuzz["payload_sha256"]
    assert replay["perturb"]["swaps"] == fuzz["perturb"]["swaps"]


def test_replay_subset_is_a_different_permutation():
    fuzz = _cell(perturb={"seed": 4, "rate": 0.4})
    swaps = fuzz["perturb"]["swaps"]
    assert len(swaps) >= 2
    partial = _cell(perturb={"seed": 0, "rate": 0.0, "replay": swaps[:1]})
    assert partial["perturb"]["swaps"] == swaps[:1]
    assert partial["payload_sha256"] != fuzz["payload_sha256"]


# ------------------------------------------------------------- engine hooks

def test_wheel_core_rejects_perturber():
    from repro._fastpath import FASTPATH

    FASTPATH.event_wheel = True
    sim = Simulator(seed=0)
    with pytest.raises(SimulationError):
        sim.install_perturber(TiePerturber(seed=0))


def test_armed_perturber_is_consumed_by_the_next_simulator_only():
    from repro._fastpath import FASTPATH

    FASTPATH.event_wheel = False  # the hook lives on the heap core
    p = TiePerturber(seed=0)
    arm_perturber(p)
    first = Simulator(seed=0)
    assert first._perturber is p
    second = Simulator(seed=0)
    assert second._perturber is None


def test_assign_swaps_adjacent_keys_only():
    """One taken opportunity files the new entry just before the
    youngest pending same-instant key and leaves everything else."""
    from repro._fastpath import FASTPATH

    FASTPATH.event_wheel = False
    p = TiePerturber(replay=[2])
    sim = Simulator(seed=0)
    keys = [p.assign(sim, 100, 1), p.assign(sim, 100, 2),
            p.assign(sim, 100, 3)]
    # Opportunity 1 (seq 2) declined; opportunity 2 (seq 3) swapped in
    # front of seq 2 via a fractional key.
    assert keys[0] == 1 and keys[1] == 2
    assert 1 < keys[2] < 2
    assert p.swaps == [2] and p.opportunities == 2
