"""The toggle-matrix explorer: cell construction, equivalence-class
derivation, budget capping, and end-to-end classification."""

import pytest

from repro.errors import SimulationError
from repro.verify import build_matrix, make_cell, run_matrix, sample_matrix
from repro.verify.matrix import classify, full_matrix

SMALL = {"messages": 4, "storm_rounds": 12, "migrate_at_ms": 200}


# ---------------------------------------------------------------- cells

def test_cells_record_only_deltas_from_the_defaults():
    cell = make_cell({"packet_pool": True, "route_cache": False})
    assert cell["toggles"] == {"route_cache": False}  # packet_pool is default


def test_expect_class_derivation():
    assert make_cell()["expect"] == "byte"
    assert make_cell({"event_wheel": True})["expect"] == "byte"
    assert make_cell({"burst_pacing": True})["expect"] == "tolerant"
    assert make_cell(perturb={"seed": 1, "rate": 0.2})["expect"] == "perturb"
    assert make_cell(schedule="drop")["expect"] == "fault"
    # Faults are the weakest promise, whatever else the cell carries.
    assert make_cell({"burst_pacing": True},
                     schedule="drop")["expect"] == "fault"


def test_unknown_toggle_raises():
    with pytest.raises(SimulationError):
        make_cell({"warp_drive": True})


def test_perturbed_cell_rejects_the_wheel_core():
    with pytest.raises(SimulationError):
        make_cell({"event_wheel": True}, perturb={"seed": 1, "rate": 0.2})


# --------------------------------------------------------------- matrices

def test_sample_matrix_is_stratified_and_deterministic():
    cells = sample_matrix(8, seed=7)
    assert len(cells) == 8
    assert cells[0]["label"] == "baseline"
    classes = {c["expect"] for c in cells}
    assert classes == {"byte", "tolerant", "perturb", "fault"}
    cores = {c["toggles"].get("event_wheel", False) for c in cells}
    assert cores == {False, True}
    assert sample_matrix(8, seed=7) == cells
    assert sample_matrix(12, seed=7)[:8] == cells  # sample grows stably


def test_full_matrix_covers_the_whole_toggle_product():
    from repro._fastpath import knob_domains

    cells = full_matrix(seed=0)
    # Every toggle vector survives as its delta set (the all-defaults
    # vector collapses into the baseline), + schedules + perturb seeds.
    vectors = {tuple(sorted(c["toggles"].items())) for c in cells
               if c["schedule"] is None and c["perturb"] is None}
    assert len(vectors) == 2 ** len(knob_domains())


def test_budget_env_caps_the_matrix(monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY_BUDGET", "4")
    cells = build_matrix("sample:8", seed=7)
    assert len(cells) == 4
    assert cells == sample_matrix(8, seed=7)[:4]  # deterministic prefix
    monkeypatch.setenv("REPRO_VERIFY_BUDGET", "not-a-number")
    with pytest.raises(SimulationError):
        build_matrix("sample:8", seed=7)


def test_malformed_matrix_spec_raises():
    for spec in ("bogus", "sample:", "sample:x"):
        with pytest.raises(SimulationError):
            build_matrix(spec)


# ------------------------------------------------------------ exploration

def test_matrix_passes_on_main_and_parallel_equals_serial():
    cells = build_matrix("sample:8", seed=3)
    serial = run_matrix(cells, base_seed=3, scenario_config=SMALL)
    assert serial.ok, serial.summary()
    parallel = run_matrix(cells, base_seed=3, scenario_config=SMALL,
                          workers=2)
    assert parallel.to_json() == serial.to_json()


def test_run_matrix_requires_a_baseline_first_cell():
    with pytest.raises(SimulationError):
        run_matrix([make_cell({"event_wheel": True})], base_seed=0)


def test_classify_flags_crashes_and_digest_mismatches():
    cell = make_cell({"event_wheel": True})
    baseline = {"payload_sha256": "aaa", "stable": {"completed": 1},
                "kpis": {"events": 100}}
    crashed = dict(baseline, crash="SimulationError: boom")
    assert classify(cell, crashed, baseline) == \
        ["scenario crashed: SimulationError: boom"]
    moved = {"payload_sha256": "bbb", "crash": None, "invariants_ok": True,
             "stable": {"completed": 1}, "kpis": {"events": 100}}
    reasons = classify(cell, moved, baseline)
    assert len(reasons) == 1 and "digest differs" in reasons[0]


def test_classify_tolerant_gates_stable_exactly_and_kpis_by_tolerance():
    cell = make_cell({"burst_pacing": True})
    baseline = {"payload_sha256": "aaa", "crash": None,
                "stable": {"completed": 5}, "kpis": {"events": 100}}
    ok = {"payload_sha256": "bbb", "crash": None, "invariants_ok": True,
          "stable": {"completed": 5}, "kpis": {"events": 60}}
    assert classify(cell, ok, baseline, tolerance=0.75) == []
    # A lost request is never within tolerance...
    lost = dict(ok, stable={"completed": 4})
    assert any("stable" in r for r in classify(cell, lost, baseline))
    # ...and a KPI collapse beyond the tolerance trips.
    collapsed = dict(ok, kpis={"events": 2})
    assert any("KPI events" in r
               for r in classify(cell, collapsed, baseline, tolerance=0.75))
