"""Shared test scaffolding: build small clusters of bare workstations
(no services layer) and run process bodies on them.

:func:`make_cluster` is the one factory tests should reach for: bare or
full-service clusters, optional loss/fault planes, and a ``toggles``
vector applied *before* construction (components read the switch blocks
at build time).  Toggles set here are NOT restored by the factory -- the
autouse hygiene fixture in ``tests/conftest.py`` snapshots and restores
both switch blocks around every test, so factories and tests can flip
knobs freely without try/finally boilerplate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import DEFAULT_MODEL, HardwareModel
from repro.kernel import Priority, Workstation
from repro.net import Ethernet
from repro.sim import Simulator


class BareCluster:
    """A simulator, an Ethernet, and N bare workstations."""

    def __init__(
        self,
        n: int = 2,
        seed: int = 0,
        model: HardwareModel = DEFAULT_MODEL,
        loss=None,
    ):
        Workstation.reset_world()
        self.sim = Simulator(seed=seed)
        self.model = model
        self.net = Ethernet(self.sim, model, loss=loss)
        self.stations: List[Workstation] = [
            Workstation(self.sim, i, self.net, model) for i in range(n)
        ]

    def spawn_program(
        self,
        station: Workstation,
        body,
        space_bytes: int = 64 * 1024,
        priority: Priority = Priority.LOCAL,
        name: str = "prog",
        lh=None,
    ):
        """Create a one-process program in its own logical host (unless an
        existing logical host is supplied).  Returns (lh, pcb)."""
        kernel = station.kernel
        if lh is None:
            lh = kernel.create_logical_host()
            kernel.allocate_space(lh, space_bytes, name=f"{name}-space")
        pcb = kernel.create_process(lh, body, priority=priority, name=name)
        return lh, pcb

    def run(self, until_us: Optional[int] = None) -> int:
        return self.sim.run(until_us=until_us)


def apply_toggles(toggles: Optional[Dict[str, bool]]) -> None:
    """Set FASTPATH/COPY_PLANE/PLACEMENT knobs by name (unknown names
    raise).  No restore here -- the conftest hygiene fixture owns that."""
    if not toggles:
        return
    from repro._fastpath import knob_block, knob_domains

    domains = knob_domains()
    for name, value in sorted(toggles.items()):
        domain = domains.get(name)
        if domain is None:
            raise ValueError(
                f"unknown toggle {name!r}; known: {', '.join(sorted(domains))}"
            )
        setattr(knob_block(domain), name, bool(value))


def make_cluster(
    n: int = 2,
    *,
    seed: int = 0,
    full: bool = False,
    toggles: Optional[Dict[str, bool]] = None,
    loss=None,
    faults=None,
    registry=None,
    model: HardwareModel = DEFAULT_MODEL,
):
    """The parameterized cluster factory.

    ``full=False`` (default) returns a :class:`BareCluster` of ``n``
    bare workstations; ``full=True`` returns a service-booted
    :func:`repro.cluster.build_cluster` with ``n`` workstations (plus
    its file server).  ``toggles`` (knob name -> bool) is applied before
    construction so components see the requested switch positions.
    """
    apply_toggles(toggles)
    if full:
        from repro.cluster import build_cluster

        return build_cluster(
            n_workstations=n, seed=seed, model=model,
            registry=registry, loss=loss, faults=faults,
        )
    if faults is not None or registry is not None:
        raise ValueError("faults/registry need a full cluster (full=True)")
    return BareCluster(n=n, seed=seed, model=model, loss=loss)
