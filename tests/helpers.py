"""Shared test scaffolding: build small clusters of bare workstations
(no services layer) and run process bodies on them."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config import DEFAULT_MODEL, HardwareModel
from repro.kernel import Priority, Workstation
from repro.net import Ethernet
from repro.sim import Simulator


class BareCluster:
    """A simulator, an Ethernet, and N bare workstations."""

    def __init__(
        self,
        n: int = 2,
        seed: int = 0,
        model: HardwareModel = DEFAULT_MODEL,
        loss=None,
    ):
        Workstation.reset_world()
        self.sim = Simulator(seed=seed)
        self.model = model
        self.net = Ethernet(self.sim, model, loss=loss)
        self.stations: List[Workstation] = [
            Workstation(self.sim, i, self.net, model) for i in range(n)
        ]

    def spawn_program(
        self,
        station: Workstation,
        body,
        space_bytes: int = 64 * 1024,
        priority: Priority = Priority.LOCAL,
        name: str = "prog",
        lh=None,
    ):
        """Create a one-process program in its own logical host (unless an
        existing logical host is supplied).  Returns (lh, pcb)."""
        kernel = station.kernel
        if lh is None:
            lh = kernel.create_logical_host()
            kernel.allocate_space(lh, space_bytes, name=f"{name}-space")
        pcb = kernel.create_process(lh, body, priority=priority, name=name)
        return lh, pcb

    def run(self, until_us: Optional[int] = None) -> int:
        return self.sim.run(until_us=until_us)
