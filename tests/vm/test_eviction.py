"""Tests for the residency cap and CLOCK eviction."""

import pytest

from repro.config import DEFAULT_MODEL, PAGE_SIZE
from repro.errors import KernelError
from repro.kernel import AddressSpace, Compute, TouchPages
from repro.vm import Pager

from tests.helpers import BareCluster


def capped_space(pages=16, cap=4):
    space = AddressSpace(PAGE_SIZE * pages)
    pager = Pager(DEFAULT_MODEL, max_resident=cap)
    pager.attach(space, resident=False)
    return space, pager


class TestClockEviction:
    def test_residency_never_exceeds_cap(self):
        space, pager = capped_space(pages=16, cap=4)
        for i in range(16):
            pager.service_faults([i])
            assert pager.resident_count() <= 4
        assert pager.evictions == 12

    def test_faulting_within_cap_evicts_nothing(self):
        space, pager = capped_space(pages=16, cap=8)
        pager.service_faults(range(8))
        assert pager.evictions == 0
        assert pager.resident_count() == 8

    def test_referenced_pages_get_second_chance(self):
        space, pager = capped_space(pages=8, cap=3)
        pager.service_faults([0, 1, 2])
        # Keep page 0 hot: its reference bit stays set.
        space.pages[0].referenced = True
        space.pages[1].referenced = False
        space.pages[2].referenced = False
        pager.service_faults([3])
        # Page 1 (first unreferenced after the hand) went, page 0 stayed.
        assert space.pages[0].resident
        assert not space.pages[1].resident

    def test_dirty_victim_is_written_back(self):
        space, pager = capped_space(pages=8, cap=2)
        pager.service_faults([0, 1])
        space.touch_pages([0])  # page 0 is dirty now
        space.pages[0].referenced = False
        space.pages[1].referenced = False
        cost = pager.service_faults([2])
        assert pager.writeback_evictions == 1
        assert pager.store[0] == space.pages[0].version
        assert cost >= DEFAULT_MODEL.page_fault_service_us + \
            DEFAULT_MODEL.page_flush_us_per_page

    def test_evicted_dirty_page_round_trips(self):
        """Write a page, evict it, fault it back: the version survives
        via the file-server copy."""
        space, pager = capped_space(pages=8, cap=2)
        pager.service_faults([0, 1])
        space.touch_pages([0, 0, 0])  # version 3
        version = space.pages[0].version
        space.pages[0].referenced = False
        space.pages[1].referenced = True
        pager.service_faults([2])     # evicts (flushes) page 0
        assert not space.pages[0].resident
        space.pages[0].version = 0    # simulate content leaving memory
        pager.service_faults([0])     # fault back in
        assert space.pages[0].version == version

    def test_impossible_cap_raises(self):
        space, pager = capped_space(pages=4, cap=0)
        with pytest.raises(KernelError):
            pager.service_faults([0])


class TestThrashBehaviour:
    def test_working_set_within_cap_stops_faulting(self):
        """Once the working set is resident, repeated touches are free --
        the locality property paging depends on."""
        cluster = BareCluster(n=1)
        ws = cluster.stations[0]
        from repro.vm import attach_pager

        def body():
            for _ in range(50):
                yield Compute(1_000)
                yield TouchPages([0, 1, 2])

        lh, pcb = cluster.spawn_program(ws, body(), space_bytes=PAGE_SIZE * 16)
        pager = Pager(DEFAULT_MODEL, max_resident=6)
        pager.attach(lh.spaces[0], resident=False)
        cluster.run()
        assert pager.faults == 3  # one cold fault per page, then none

    def test_oversized_working_set_thrashes(self):
        """A working set larger than the cap faults continuously -- and
        the run takes visibly longer than the fitting case."""
        cluster = BareCluster(n=1)
        ws = cluster.stations[0]

        def body(stride):
            def gen():
                for i in range(40):
                    yield Compute(1_000)
                    yield TouchPages([(i * stride) % 8, ((i * stride) + 4) % 8])
            return gen

        lh, pcb = cluster.spawn_program(ws, body(1)(), space_bytes=PAGE_SIZE * 8)
        pager = Pager(DEFAULT_MODEL, max_resident=3)
        pager.attach(lh.spaces[0], resident=False)
        cluster.run()
        assert pager.faults > 20
        assert pager.evictions > 15
