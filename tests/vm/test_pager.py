"""Unit tests for demand paging and flush-based migration (paper §3.2)."""

import pytest

from repro.config import DEFAULT_MODEL, PAGE_SIZE
from repro.kernel import AddressSpace, Compute, TouchPages
from repro.kernel.process import Priority
from repro.vm import Pager, attach_pager

from tests.helpers import BareCluster


class TestPagerMechanics:
    def make_space(self, pages=16):
        space = AddressSpace(PAGE_SIZE * pages)
        pager = Pager(DEFAULT_MODEL).attach(space)
        return space, pager

    def test_attach_marks_pages_resident_by_default(self):
        space, pager = self.make_space()
        assert all(p.resident for p in space.pages)

    def test_attach_nonresident(self):
        space = AddressSpace(PAGE_SIZE * 4)
        Pager(DEFAULT_MODEL).attach(space, resident=False)
        assert not any(p.resident for p in space.pages)

    def test_fault_installs_stored_version_and_costs_time(self):
        space, pager = self.make_space()
        space.pages[3].version = 7
        pager.flush([space.pages[3]])
        space.pages[3].resident = False
        space.pages[3].version = 0  # simulate a fresh destination page
        cost = pager.service_faults([3])
        assert cost == DEFAULT_MODEL.page_fault_service_us
        assert space.pages[3].resident
        assert space.pages[3].version == 7
        assert pager.faults == 1
        assert pager.double_transfers == 1

    def test_fault_on_resident_page_is_free(self):
        space, pager = self.make_space()
        assert pager.service_faults([0, 1]) == 0
        assert pager.faults == 0

    def test_flush_clears_dirty_and_counts(self):
        space, pager = self.make_space()
        space.touch_pages([0, 1, 2])
        count, cost = pager.flush_all_dirty()
        assert count == 3
        assert cost == 3 * DEFAULT_MODEL.page_flush_us_per_page
        assert space.dirty_pages() == []
        assert pager.store == {0: 1, 1: 1, 2: 1}

    def test_dirty_resident_pages_excludes_nonresident(self):
        space, pager = self.make_space()
        space.touch_pages([0, 1])
        space.pages[1].resident = False
        assert [p.index for p in pager.dirty_resident_pages()] == [0]

    def test_evict_clean_drops_only_current_pages(self):
        space, pager = self.make_space(4)
        space.touch_pages([0, 1])
        pager.flush([space.pages[0]])
        space.pages[1].dirty = False  # clean but never flushed: not evictable
        evicted = pager.evict_clean()
        assert evicted >= 1
        assert not space.pages[0].resident
        assert space.pages[1].resident

    def test_touch_indexes_helper(self):
        space, pager = self.make_space()
        assert pager.indexes_for_touch(0, 1) == [0]
        assert pager.indexes_for_touch(PAGE_SIZE - 1, 2) == [0, 1]
        assert pager.indexes_for_touch(0, 0) == []


class TestSchedulerIntegration:
    def test_touch_to_paged_out_page_charges_fault_time(self):
        cluster = BareCluster(n=1)
        ws = cluster.stations[0]
        times = []

        def body():
            yield Compute(1_000)
            start = cluster.sim.now
            yield TouchPages([0, 1, 2])
            times.append(cluster.sim.now - start)

        lh, pcb = cluster.spawn_program(ws, body(), space_bytes=PAGE_SIZE * 8)
        pager = attach_pager(ws.kernel, lh.spaces[0])
        for page in lh.spaces[0].pages:
            page.resident = False
        cluster.run()
        assert times and times[0] >= 3 * DEFAULT_MODEL.page_fault_service_us
        assert pager.faults == 3

    def test_resident_touches_cost_nothing_extra(self):
        cluster = BareCluster(n=1)
        ws = cluster.stations[0]
        times = []

        def body():
            yield Compute(1_000)
            start = cluster.sim.now
            yield TouchPages([0, 1, 2])
            times.append(cluster.sim.now - start)

        lh, pcb = cluster.spawn_program(ws, body(), space_bytes=PAGE_SIZE * 8)
        attach_pager(ws.kernel, lh.spaces[0])
        cluster.run()
        assert times and times[0] < 1_000


class TestVmFlushMigration:
    def _setup(self):
        """A cluster where ws1 runs a paged churner program to migrate."""
        from repro.cluster import build_cluster
        from repro.execution import ProgramImage, ProgramRegistry, exec_program

        registry = ProgramRegistry()

        def churner(ctx):
            for i in range(400):
                yield Compute(20_000)
                yield TouchPages([(i * 3) % 40, (i * 3 + 1) % 40])
            return 0

        registry.register(ProgramImage(
            name="paged", image_bytes=64 * 1024, space_bytes=128 * 1024,
            code_bytes=48 * 1024, body_factory=churner,
        ))
        cluster = build_cluster(n_workstations=3, registry=registry)
        holder = {}

        def session(ctx):
            pid, pm = yield from exec_program(ctx, "paged", where="ws1")
            holder["pid"] = pid

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=2_000_000)
        pid = holder["pid"]
        kernel = cluster.workstations[1].kernel
        lh = kernel.logical_hosts[pid.logical_host_id]
        pager = attach_pager(kernel, lh.spaces[0])
        return cluster, kernel, lh, pid, pager

    def test_vm_flush_migration_completes_and_program_survives(self):
        from repro.kernel.process import Priority as Prio
        from repro.migration.vm_flush import run_vm_flush_migration

        cluster, kernel, lh, pid, pager = self._setup()
        results = []

        def mgr_body():
            stats = yield from run_vm_flush_migration(kernel, lh)
            results.append(stats)

        kernel.create_process(
            cluster.pm("ws1").pcb.logical_host, mgr_body(),
            priority=Prio.MIGRATION, name="vm-mgr",
        )
        cluster.run(until_us=60_000_000)
        stats = results[0]
        assert stats.success, stats.error
        # The program faulted its pages back in at the destination and
        # kept running: double transfers happened.
        assert pager.faults > 0
        assert pager.double_transfers > 0

    def test_vm_flush_freeze_is_short(self):
        from repro.kernel.process import Priority as Prio
        from repro.migration.vm_flush import run_vm_flush_migration

        cluster, kernel, lh, pid, pager = self._setup()
        results = []

        def mgr_body():
            stats = yield from run_vm_flush_migration(kernel, lh)
            results.append(stats)

        kernel.create_process(
            cluster.pm("ws1").pcb.logical_host, mgr_body(),
            priority=Prio.MIGRATION, name="vm-mgr",
        )
        cluster.run(until_us=60_000_000)
        stats = results[0]
        assert stats.success
        # Freeze covers only the residual flush + kernel state copy:
        # far below the ~400 ms a full 128 KB copy would take.
        assert stats.freeze_us < 250_000

    def test_vm_flush_requires_pagers(self):
        from repro.kernel.process import Priority as Prio
        from repro.migration.vm_flush import run_vm_flush_migration

        cluster, kernel, lh, pid, pager = self._setup()
        lh.spaces[0].pager = None  # detach
        results = []

        def mgr_body():
            stats = yield from run_vm_flush_migration(kernel, lh)
            results.append(stats)

        kernel.create_process(
            cluster.pm("ws1").pcb.logical_host, mgr_body(),
            priority=Prio.MIGRATION, name="vm-mgr",
        )
        cluster.run(until_us=10_000_000)
        assert results and not results[0].success
        assert "not demand-paged" in results[0].error
