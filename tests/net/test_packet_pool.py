"""Packet free-list pool: reuse, safety guards, counters, batched rx."""

import sys

from repro.config import DEFAULT_MODEL
from repro.net import Ethernet, Nic, Packet
from repro.net.addresses import workstation_address
from repro.net.packet import PacketPool
from repro.obs.metrics import MetricsRegistry
from repro.sim import Simulator


def make_net(n_hosts=2, seed=0):
    sim = Simulator(seed=seed)
    net = Ethernet(sim, DEFAULT_MODEL)
    nics = []
    for i in range(n_hosts):
        nic = Nic(sim, workstation_address(i))
        net.attach(nic)
        nics.append(nic)
    return sim, net, nics


class TestPacketPool:
    def test_alloc_restamps_every_field(self):
        pool = PacketPool(enabled=True)
        a = pool.alloc(workstation_address(0), workstation_address(1),
                       "first", {"x": 1}, 100)
        first_id = a.packet_id
        assert pool.release(a)
        b = pool.alloc(workstation_address(2), workstation_address(3),
                       "second", None, 64)
        assert b is a  # recycled object
        assert b.src == workstation_address(2)
        assert b.dst == workstation_address(3)
        assert b.kind == "second"
        assert b.payload is None
        assert b.size_bytes == 64
        assert b.packet_id > first_id  # identity is fresh
        assert not b.is_broadcast

    def test_release_refuses_referenced_packet(self):
        pool = PacketPool(enabled=True)
        p = pool.alloc(workstation_address(0), workstation_address(1),
                       "k", None, 64)
        keeper = p  # second reference: recycling would alias live state
        assert not pool.release(p)
        assert keeper.kind == "k"

    def test_held_parameter_accounts_for_container_refs(self):
        pool = PacketPool(enabled=True)
        p = pool.alloc(workstation_address(0), workstation_address(1),
                       "k", None, 64)
        box = (p,)
        assert sys.getrefcount(p) == 3  # p + box + getrefcount arg
        assert not pool.release(p)
        assert pool.release(p, held=1)
        del box

    def test_release_clears_payload(self):
        pool = PacketPool(enabled=True)
        payload = {"big": list(range(10))}
        p = pool.alloc(workstation_address(0), workstation_address(1),
                       "k", payload, 64)
        assert pool.release(p)
        assert p.payload is None  # pool must not pin payloads alive

    def test_disabled_pool_never_recycles(self):
        pool = PacketPool(enabled=False)
        p = pool.alloc(workstation_address(0), workstation_address(1),
                       "k", None, 64)
        assert not pool.release(p)
        q = pool.alloc(workstation_address(0), workstation_address(1),
                       "k", None, 64)
        assert q is not p
        assert pool.stats()["reused"] == 0

    def test_counters_and_metrics(self):
        pool = PacketPool(enabled=True)
        registry = MetricsRegistry()
        registry.enable()
        pool.bind_metrics(registry)
        p = pool.alloc(workstation_address(0), workstation_address(1),
                       "k", None, 64)
        pool.release(p)
        pool.alloc(workstation_address(0), workstation_address(1),
                   "k", None, 64)
        stats = pool.stats()
        assert stats["allocated"] == 2
        assert stats["recycled"] == 1
        assert stats["reused"] == 1
        snap = registry.snapshot()
        cluster = snap["cluster"]
        assert cluster["net.pool_reused"] == 1
        assert cluster["net.pool_recycled"] == 1


class TestPooledDelivery:
    def test_emit_delivers_like_send(self):
        sim, net, nics = make_net(2)
        got = []
        nics[1].install_handler(lambda p: got.append((p.kind, p.payload)))
        nics[0].emit(nics[1].address, "hello", {"n": 1})
        sim.run()
        assert got == [("hello", {"n": 1})]

    def test_packets_recycle_through_the_wire(self):
        sim, net, nics = make_net(2)
        nics[1].install_handler(lambda p: None)
        for _ in range(20):
            nics[0].emit(nics[1].address, "x", None)
            sim.run()
        stats = net.pool.stats()
        # First trip allocates; later trips reuse the recycled object.
        assert stats["recycled"] >= 19
        assert stats["reused"] >= 19

    def test_handler_keeping_packet_blocks_recycling(self):
        sim, net, nics = make_net(2)
        kept = []
        nics[1].install_handler(kept.append)
        nics[0].emit(nics[1].address, "keep", {"v": 7})
        sim.run()
        assert kept[0].payload == {"v": 7}  # not clobbered
        nics[0].emit(nics[1].address, "second", None)
        sim.run()
        assert kept[0].kind == "keep"  # still not recycled out from under us


class TestBatchedRx:
    """Coalescing happens on the receive-*processing* hop: handlers that
    charge a per-packet protocol delay via ``nic.schedule_rx`` (as the
    IPC transport does), not raw same-event delivery callbacks."""

    @staticmethod
    def _processing_handlers(sim, nics, got, delay_us=25):
        for i, nic in enumerate(nics[1:], start=1):
            def handler(p, nic=nic, i=i):
                nic.schedule_rx(delay_us, lambda pp, i=i: got.append(
                    (i, sim.now)), p)
            nic.install_handler(handler)

    def test_broadcast_processing_coalesces_and_preserves_order(self):
        from repro.net import BROADCAST

        sim, net, nics = make_net(4)
        got = []
        self._processing_handlers(sim, nics, got)
        nics[0].emit(BROADCAST, "q", None)
        sim.run()
        # All three process at the same simulated instant, in attach
        # order -- exactly as three separate events would have.
        assert [i for i, _ in got] == [1, 2, 3]
        assert len({t for _, t in got}) == 1
        assert net.rx_coalesced == 2  # 3 handler timers in 1 event

    def test_event_count_matches_unbatched_world(self):
        from repro.net import BROADCAST
        from repro._fastpath import FASTPATH

        def run(batched):
            old = FASTPATH.batched_rx
            FASTPATH.batched_rx = batched
            try:
                sim, net, nics = make_net(4, seed=3)
                got = []
                self._processing_handlers(sim, nics, got)
                for _ in range(5):
                    nics[0].emit(BROADCAST, "q", None)
                sim.run()
                return sim.now, sim.event_count, got
            finally:
                FASTPATH.batched_rx = old

        assert run(True) == run(False)

    def test_batched_packets_recycle_after_processing(self):
        from repro.net import BROADCAST

        sim, net, nics = make_net(3)
        got = []
        self._processing_handlers(sim, nics, got)
        nics[0].emit(BROADCAST, "q", None)
        sim.run()
        assert len(got) == 2
        assert net.pool.stats()["recycled"] >= 1
