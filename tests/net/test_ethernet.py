"""Unit tests for the Ethernet bus, NICs, addresses and loss models."""

import pytest

from repro.config import DEFAULT_MODEL
from repro.errors import SimulationError
from repro.net import (
    BROADCAST,
    BernoulliLoss,
    BurstLoss,
    Ethernet,
    HostAddress,
    Nic,
    NoLoss,
    Packet,
)
from repro.net.addresses import workstation_address
from repro.sim import Simulator


def make_net(n_hosts=2, loss=None, seed=0):
    sim = Simulator(seed=seed)
    net = Ethernet(sim, DEFAULT_MODEL, loss=loss)
    nics = []
    for i in range(n_hosts):
        nic = Nic(sim, workstation_address(i))
        net.attach(nic)
        nics.append(nic)
    return sim, net, nics


class TestAddresses:
    def test_workstation_addresses_are_unique(self):
        addrs = {workstation_address(i) for i in range(100)}
        assert len(addrs) == 100

    def test_address_equality_and_hash(self):
        assert workstation_address(3) == workstation_address(3)
        assert hash(workstation_address(3)) == hash(workstation_address(3))
        assert workstation_address(3) != workstation_address(4)

    def test_broadcast_flag(self):
        assert BROADCAST.is_broadcast
        assert not workstation_address(0).is_broadcast

    def test_address_is_immutable(self):
        addr = workstation_address(0)
        with pytest.raises(AttributeError):
            addr.value = 5

    def test_address_range_checked(self):
        with pytest.raises(SimulationError):
            HostAddress(-1)
        with pytest.raises(SimulationError):
            HostAddress(1 << 48)

    def test_repr_is_colon_hex(self):
        assert repr(workstation_address(0)) == "08:00:20:00:00:01"


class TestPacket:
    def test_packet_ids_increment(self):
        a = Packet(workstation_address(0), workstation_address(1), "x", None)
        b = Packet(workstation_address(0), workstation_address(1), "x", None)
        assert b.packet_id > a.packet_id

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(workstation_address(0), BROADCAST, "x", None, size_bytes=-1)


class TestDelivery:
    def test_unicast_reaches_only_destination(self):
        sim, net, nics = make_net(3)
        got = {i: [] for i in range(3)}
        for i, nic in enumerate(nics):
            nic.install_handler(lambda p, i=i: got[i].append(p.kind))
        nics[0].send(Packet(nics[0].address, nics[1].address, "hello", None))
        sim.run()
        assert got[1] == ["hello"]
        assert got[0] == [] and got[2] == []

    def test_broadcast_reaches_everyone_but_sender(self):
        sim, net, nics = make_net(4)
        got = {i: [] for i in range(4)}
        for i, nic in enumerate(nics):
            nic.install_handler(lambda p, i=i: got[i].append(p.kind))
        nics[2].send(Packet(nics[2].address, BROADCAST, "query", None))
        sim.run()
        assert got[2] == []
        assert all(got[i] == ["query"] for i in (0, 1, 3))

    def test_delivery_takes_wire_time(self):
        sim, net, nics = make_net(2)
        arrival = []
        nics[1].install_handler(lambda p: arrival.append(sim.now))
        pkt = Packet(nics[0].address, nics[1].address, "d", None, size_bytes=1024)
        nics[0].send(pkt)
        sim.run()
        assert arrival == [DEFAULT_MODEL.packet_wire_us(1024)]

    def test_bus_serializes_back_to_back_sends(self):
        sim, net, nics = make_net(2)
        arrivals = []
        nics[1].install_handler(lambda p: arrivals.append(sim.now))
        wire = DEFAULT_MODEL.packet_wire_us(1024)
        for _ in range(3):
            nics[0].send(Packet(nics[0].address, nics[1].address, "d", None, size_bytes=1024))
        sim.run()
        assert arrivals == [wire, 2 * wire, 3 * wire]

    def test_packet_to_unknown_address_vanishes(self):
        sim, net, nics = make_net(1)
        nics[0].send(Packet(nics[0].address, workstation_address(99), "x", None))
        sim.run()  # nothing raised

    def test_send_from_detached_nic_vanishes(self):
        sim, net, nics = make_net(2)
        net.detach(nics[0])
        nics[0].send(Packet(nics[0].address, nics[1].address, "x", None))
        sim.run()
        assert net.packets_sent == 0

    def test_packet_to_detached_nic_vanishes(self):
        sim, net, nics = make_net(2)
        got = []
        nics[1].install_handler(lambda p: got.append(p))
        net.detach(nics[1])
        nics[0].send(Packet(nics[0].address, nics[1].address, "x", None))
        sim.run()
        assert got == []

    def test_no_handler_counts_drop(self):
        sim, net, nics = make_net(2)
        nics[0].send(Packet(nics[0].address, nics[1].address, "x", None))
        sim.run()
        assert nics[1].dropped_no_handler == 1

    def test_duplicate_address_rejected(self):
        sim, net, nics = make_net(1)
        dup = Nic(sim, nics[0].address)
        with pytest.raises(SimulationError):
            net.attach(dup)

    def test_counters(self):
        sim, net, nics = make_net(2)
        nics[1].install_handler(lambda p: None)
        nics[0].send(Packet(nics[0].address, nics[1].address, "x", None, size_bytes=200))
        sim.run()
        assert net.packets_sent == 1
        assert net.bytes_sent == 200


class TestLossModels:
    def test_no_loss_never_drops(self):
        sim, net, nics = make_net(2, loss=NoLoss())
        got = []
        nics[1].install_handler(lambda p: got.append(p))
        for _ in range(50):
            nics[0].send(Packet(nics[0].address, nics[1].address, "x", None))
        sim.run()
        assert len(got) == 50

    def test_bernoulli_full_loss_drops_everything(self):
        sim, net, nics = make_net(2, loss=BernoulliLoss(1.0))
        got = []
        nics[1].install_handler(lambda p: got.append(p))
        for _ in range(20):
            nics[0].send(Packet(nics[0].address, nics[1].address, "x", None))
        sim.run()
        assert got == []
        assert net.packets_dropped == 20

    def test_bernoulli_partial_loss_is_deterministic_per_seed(self):
        def run(seed):
            sim, net, nics = make_net(2, loss=BernoulliLoss(0.3), seed=seed)
            got = []
            nics[1].install_handler(lambda p: got.append(p.packet_id))
            for _ in range(100):
                nics[0].send(Packet(nics[0].address, nics[1].address, "x", None))
            sim.run()
            return len(got)

        assert run(5) == run(5)
        assert 40 < run(5) < 95  # roughly 70% delivered

    def test_bernoulli_rate_validated(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5)

    def test_burst_loss_produces_runs(self):
        sim, net, nics = make_net(2, loss=BurstLoss(p_good_to_bad=0.2, p_bad_to_good=0.3))
        outcomes = []
        nics[1].install_handler(lambda p: outcomes.append(p.packet_id))
        n = 200
        for _ in range(n):
            nics[0].send(Packet(nics[0].address, nics[1].address, "x", None))
        sim.run()
        assert 0 < len(outcomes) < n  # some dropped, some delivered

    def test_burst_probabilities_validated(self):
        with pytest.raises(ValueError):
            BurstLoss(p_good_to_bad=-0.1)


class TestCalibration:
    def test_bulk_copy_rate_is_about_3s_per_mb(self):
        us = DEFAULT_MODEL.bulk_copy_us(1024 * 1024)
        assert 2_800_000 < us < 3_200_000

    def test_program_load_rate_is_about_330ms_per_100kb(self):
        us = DEFAULT_MODEL.program_load_us(100 * 1024)
        assert 310_000 < us < 350_000

    def test_kernel_state_copy_formula(self):
        assert DEFAULT_MODEL.kernel_state_copy_us(1, 1) == 14_000 + 2 * 9_000
        assert DEFAULT_MODEL.kernel_state_copy_us(3, 2) == 14_000 + 5 * 9_000

    def test_bulk_copy_zero_bytes_is_free(self):
        assert DEFAULT_MODEL.bulk_copy_us(0) == 0

    def test_bulk_copy_partial_packet(self):
        one = DEFAULT_MODEL.bulk_copy_us(100)
        assert one == DEFAULT_MODEL.packet_cost_us(100)
