"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_info_command(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "SOSP 1985" in out
    assert "3.01 s/MB" in out or "s/MB" in out
    assert "100 us/op" in out


def test_demo_command(capsys):
    assert main(["demo", "--workstations", "3", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "tex: exit 0" in out
    assert "migrateprog" in out
    assert "simulated seconds" in out


def test_migrate_command(capsys):
    assert main(["migrate", "--program", "optimizer"]) == 0
    out = capsys.readouterr().out
    assert "pre-copy round 0" in out
    assert "freeze time" in out
    assert "frozen residual" in out


def test_trace_command_emits_chrome_trace(tmp_path, capsys):
    import json

    out_file = tmp_path / "timeline.json"
    assert main(["trace", "--program", "optimizer",
                 "--out", str(out_file)]) == 0
    out = capsys.readouterr().out
    # The freeze span's duration is checked against MigrationStats live.
    assert "freeze span:" in out and "==" in out
    assert "self-profile" in out

    payload = json.loads(out_file.read_text())
    events = payload["traceEvents"]
    assert any(e["ph"] == "X" and e["name"] == "freeze" for e in events)
    assert any(e["ph"] == "M" for e in events)
    assert payload["otherData"]["metrics"]["cluster"]["mig.migrations"] == 1


def test_default_is_demo(capsys):
    assert main([]) == 0
    assert "simulated seconds" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
