"""CLI tests for ``repro report``, ``repro diff`` and the trace
window flags -- including the ISSUE acceptance round-trips."""

import json

import pytest

from repro.__main__ import main
from repro.obs.report import load_report


@pytest.fixture(scope="module")
def baseline_report(tmp_path_factory):
    """One real instrumented migration, reported (module-scoped: the
    scenario takes a second or two and several tests read it)."""
    path = tmp_path_factory.mktemp("reports") / "base.json"
    rc = main(["report", "--program", "tex", "--seed", "0",
               "--out", str(path)])
    assert rc == 0
    return str(path)


@pytest.fixture(scope="module")
def copy_plane_report(tmp_path_factory):
    """The same scenario with the COPY_PLANE toggles on."""
    path = tmp_path_factory.mktemp("reports") / "plane.json"
    rc = main(["report", "--program", "tex", "--seed", "0",
               "--copy-plane", "--out", str(path)])
    assert rc == 0
    return str(path)


class TestReportCommand:
    def test_freeze_phases_sum_to_stats(self, baseline_report):
        report = load_report(baseline_report)
        checks = report["checks"]
        assert checks["freeze_decomposition_ok"]
        assert checks["freeze_phase_sum_us"] == pytest.approx(
            checks["freeze_us"], rel=0.01
        )
        freeze = report["phases"]["freeze"]
        names = [p["name"] for p in freeze["phases"]]
        assert "(self)" in names
        assert any(n == "residual-copy" for n in names)

    def test_report_structure(self, baseline_report):
        report = load_report(baseline_report)
        assert report["kind"] == "migration"
        assert report["config"]["program"] == "tex"
        assert report["toggles"]["copy_plane"]["burst_pacing"] is False
        assert report["kpis"]["success"] is True
        assert report["kpis"]["pages_copied"] > 0
        assert report["metrics"]["cluster"]["mig.migrations"] == 1
        assert report["span_profile"]["by_category"]["migration"]["count"] > 0
        assert report["critical_path"][0]["name"] == "migrate"
        assert "invariants" not in report  # no checker installed
        assert report["wall"]["sim_us_per_wall_s"] > 0

    def test_stdout_summary(self, capsys, baseline_report):
        # The fixture already ran main(); exercise the no-out path too.
        rc = main(["report", "--program", "tex", "--seed", "0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "run report v1" in out
        assert "freeze accounting" in out and "[ok]" in out


class TestDiffCommand:
    def test_self_diff_is_within_tolerance(self, capsys, baseline_report):
        rc = main(["diff", baseline_report, baseline_report])
        out = capsys.readouterr().out
        assert rc == 0
        assert "WITHIN TOLERANCE" in out

    def test_copy_plane_delta_attributed_to_copy_subsystem(
            self, capsys, baseline_report, copy_plane_report):
        # The ISSUE acceptance: pacing off vs on -> copy.bursts moves,
        # and the diff engine pins that delta on the copy subsystem.
        rc = main(["diff", baseline_report, copy_plane_report, "--json"])
        diff = json.loads(capsys.readouterr().out)
        assert rc == 1  # genuinely different runs
        assert not diff["toggles"]["same"]
        bursts = diff["metrics"]["copy.bursts"]
        assert bursts["a"] == 0 and bursts["b"] > 0
        assert "copy.bursts" in diff["subsystems"]["copy"]["metrics"]
        a = load_report(baseline_report)
        b = load_report(copy_plane_report)
        assert b["toggles"]["copy_plane"]["burst_pacing"] is True
        assert a["toggles"]["copy_plane"]["burst_pacing"] is False

    def test_table_output_ranks_subsystems(self, capsys, baseline_report,
                                           copy_plane_report):
        rc = main(["diff", baseline_report, copy_plane_report])
        out = capsys.readouterr().out
        assert rc == 1
        assert "subsystem attribution" in out
        assert "copy.bursts" in out

    def test_bad_input_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["diff", missing, missing]) == 2
        assert "diff:" in capsys.readouterr().err

    def test_rejects_non_report_json(self, tmp_path, capsys,
                                     baseline_report):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"not": "a report"}')
        assert main(["diff", baseline_report, str(bogus)]) == 2

    def test_tolerance_flag_changes_the_verdict(self, tmp_path, capsys,
                                                baseline_report):
        # Nudge one counter by 0.5%: inside the default 1% gate,
        # outside a 0.1% gate.
        drifted = json.loads(open(baseline_report).read())
        drifted["metrics"]["cluster"]["ipc.copy_bytes"] = round(
            drifted["metrics"]["cluster"]["ipc.copy_bytes"] * 1.005
        )
        path = tmp_path / "drifted.json"
        path.write_text(json.dumps(drifted))
        assert main(["diff", baseline_report, str(path)]) == 0
        capsys.readouterr()
        assert main(["diff", baseline_report, str(path),
                     "--tolerance", "0.1"]) == 1
        capsys.readouterr()


class TestTraceWindowFlags:
    def test_window_restricts_exported_events(self, tmp_path, capsys):
        full = tmp_path / "full.json"
        assert main(["trace", "--program", "optimizer",
                     "--out", str(full)]) == 0
        capsys.readouterr()
        windowed = tmp_path / "win.json"
        # An empty window: everything filtered out.
        assert main(["trace", "--program", "optimizer",
                     "--out", str(windowed),
                     "--since-us", "1", "--until-us", "2"]) == 0
        capsys.readouterr()
        full_events = json.loads(full.read_text())["traceEvents"]
        win_events = json.loads(windowed.read_text())["traceEvents"]
        real = lambda evs: [e for e in evs if e["ph"] != "M"]  # noqa: E731
        assert len(real(full_events)) > 0
        assert real(win_events) == []

    def test_half_open_window_keeps_since_drops_until(self, tmp_path,
                                                      capsys):
        out = tmp_path / "w.json"
        assert main(["trace", "--program", "optimizer", "--out", str(out),
                     "--since-us", "0", "--until-us", "10000000"]) == 0
        capsys.readouterr()
        events = [e for e in json.loads(out.read_text())["traceEvents"]
                  if e["ph"] != "M"]
        assert events
        assert all(e["ts"] < 10_000_000 for e in events)
