"""Workstation reboot semantics (paper §3.3: "failure of the program
should the original host fail or be rebooted" -- unless it migrated)."""

import pytest

from repro.cluster import build_cluster
from repro.cluster.monitor import ClusterMonitor
from repro.errors import SendTimeoutError
from repro.execution import exec_program, wait_for_program
from repro.ipc.messages import Message
from repro.kernel.process import Send
from repro.migration.migrateprog import migrate_program
from repro.workloads import standard_registry


def make_world():
    cluster = build_cluster(n_workstations=3, seed=12,
                            registry=standard_registry(scale=0.3))
    job = {}

    def session(ctx):
        pid, pm = yield from exec_program(ctx, "longsim", where="ws1")
        job["pid"] = pid
        code = yield from wait_for_program(pm, pid)
        job["code"] = code

    cluster.spawn_session(cluster.workstations[0], session)
    while "pid" not in job and cluster.sim.peek() is not None:
        cluster.sim.run(until_us=cluster.sim.now + 100_000)
    return cluster, job


def test_reboot_kills_resident_programs():
    cluster, job = make_world()
    cluster.sim.strict = False
    cluster.reboot_workstation("ws1")
    cluster.run(until_us=120_000_000)
    # The program died with its host; the waiter's rendezvous is gone too.
    assert "code" not in job
    monitor = ClusterMonitor(cluster)
    assert monitor.host_of_lhid(job["pid"].logical_host_id) is None


def test_migrated_program_survives_source_reboot():
    cluster, job = make_world()
    replies = []

    def migrator(ctx):
        reply = yield from migrate_program(job["pid"])
        replies.append(reply)

    cluster.spawn_session(cluster.workstations[0], migrator, name="mig")
    while not replies and cluster.sim.peek() is not None:
        cluster.sim.run(until_us=cluster.sim.now + 100_000)
    assert replies[0]["ok"]
    cluster.sim.strict = False
    cluster.reboot_workstation("ws1")
    cluster.run(until_us=600_000_000)
    assert job.get("code") == 0


def test_rebooted_host_serves_again():
    cluster, job = make_world()
    cluster.sim.strict = False
    cluster.reboot_workstation("ws1")
    cluster.run(until_us=cluster.sim.now + 1_000_000)
    outcome = {}

    def session(ctx):
        pid, pm = yield from exec_program(ctx, "tex", where="ws1")
        outcome["pid"] = pid
        code = yield from wait_for_program(pm, pid)
        outcome["code"] = code

    cluster.spawn_session(cluster.workstations[0], session, name="again")
    cluster.run(until_us=600_000_000)
    assert outcome.get("code") == 0
    # And it answers candidate queries once more.
    assert cluster.pm("ws1").pcb.alive


def test_stale_pids_stop_resolving_after_reboot():
    cluster, job = make_world()
    cluster.sim.strict = False
    stale = job["pid"]
    cluster.reboot_workstation("ws1")
    caught = []

    def prober(ctx):
        try:
            yield Send(stale, Message("ping"))
        except SendTimeoutError:
            caught.append(True)

    cluster.spawn_session(cluster.workstations[0], prober, name="probe")
    cluster.run(until_us=120_000_000)
    assert caught == [True]


def test_reboot_preserves_address_and_name():
    cluster, job = make_world()
    cluster.sim.strict = False
    old_addr = cluster.station("ws1").address
    fresh = cluster.reboot_workstation("ws1")
    assert fresh.address == old_addr
    assert fresh.name == "ws1"
    assert cluster.station("ws1") is fresh
