"""The placement plane: host-state caches, piggy-backed digests, the
probe/admission protocol, and the pluggable ``@ *`` policies."""

from types import SimpleNamespace

import pytest

from repro.cluster.placement import (
    CachedBestFit,
    FirstResponder,
    HostDigest,
    HostStateCache,
    PlacementPolicy,
    RandomK,
    make_policy,
)
from repro.errors import ExecutionError
from repro.execution import ExecSpec, exec_program, wait_program
from repro.ipc.messages import Message
from repro.kernel.process import Send
from repro.sim import Simulator
from repro.workloads import standard_registry

from tests.helpers import make_cluster


def digest(host, load=0, memory_free=1_000_000, ts=0, pm=None):
    return HostDigest(host=host, pm=pm, load=load, remote=0, ready=0,
                      memory_free=memory_free, ts_us=ts)


def bare_cache(**kwargs):
    """A cache with no cluster behind it -- exercises the passive side."""
    sim = Simulator(seed=0)
    return HostStateCache(
        SimpleNamespace(sim=sim, program_managers={}), "ws0", **kwargs), sim


# ------------------------------------------------------------ passive cache

def test_digest_from_malformed_fields_is_none():
    assert HostDigest.from_fields({}) is None
    assert HostDigest.from_fields({"host": "ws1", "load": "not-a-number",
                                   "memory_free": 1, "ts": 0,
                                   "pm": None}) is None


def test_observe_newest_timestamp_wins():
    cache, _sim = bare_cache()
    cache.observe(digest("ws1", load=2, ts=100))
    cache.observe(digest("ws1", load=0, ts=50))  # older: ignored
    assert cache.entries["ws1"].load == 2
    cache.observe(digest("ws1", load=1, ts=200))
    assert cache.entries["ws1"].load == 1
    assert cache.stats.observations == 2


def test_fresh_entries_respect_ttl():
    cache, sim = bare_cache(ttl_us=1_000)
    cache.observe(digest("ws1", ts=0))
    cache.observe(digest("ws2", ts=900))
    assert [d.host for d in cache.fresh_entries(now=500)] == ["ws1", "ws2"]
    assert [d.host for d in cache.fresh_entries(now=1_500)] == ["ws2"]
    assert cache.fresh_digest("ws1", now=1_500) is None
    assert cache.fresh_digest("ws2", now=1_500).host == "ws2"


def test_best_fit_orders_by_load_then_memory_then_name():
    cache, _sim = bare_cache()
    cache.observe(digest("ws3", load=1, memory_free=500))
    cache.observe(digest("ws2", load=0, memory_free=100))
    cache.observe(digest("ws1", load=0, memory_free=900))
    assert cache.best_fit().host == "ws1"        # least load, most memory
    assert cache.best_fit(exclude=("ws1",)).host == "ws2"
    assert cache.best_fit(exclude=("ws1", "ws2", "ws3")) is None


def test_idle_hosts_filters_by_load():
    cache, _sim = bare_cache()
    cache.observe(digest("ws1", load=0))
    cache.observe(digest("ws2", load=5))
    assert [d.host for d in cache.idle_hosts(idle_load=3)] == ["ws1"]


def test_drop_forgets_a_host():
    cache, _sim = bare_cache()
    cache.observe(digest("ws1"))
    cache.drop("ws1")
    cache.drop("ws1")  # idempotent
    assert "ws1" not in cache.entries
    assert cache.stats.drops == 1


def test_make_policy_coercions():
    assert isinstance(make_policy("random_k"), RandomK)
    assert isinstance(make_policy(CachedBestFit), CachedBestFit)
    policy = FirstResponder()
    assert make_policy(policy) is policy
    with pytest.raises(ValueError):
        make_policy("no-such-policy")
    with pytest.raises(TypeError):
        make_policy(42)


# ------------------------------------------------------------- wire protocol

def test_candidate_reply_carries_piggybacked_digest():
    """Digests ride on the replies the manager already sends -- with the
    placement toggles off (the default) as much as on."""
    cluster = make_cluster(3, full=True, registry=standard_registry(scale=0.3))
    replies = []

    def session(ctx):
        from repro.execution.api import select_candidate_host

        reply = yield from select_candidate_host()
        replies.append(reply)

    cluster.spawn_session(cluster.workstations[0], session)
    cluster.run(until_us=5_000_000)
    assert replies
    d = HostDigest.from_fields(replies[0]["digest"])
    assert d is not None
    assert d.host == replies[0]["host"]
    assert d.load == replies[0]["load"]


def test_probe_load_always_replies_even_when_unwilling():
    """A unicast probe must never be declined (that would strand the
    prober until its send timeout), only answered unwilling."""
    cluster = make_cluster(2, full=True, registry=standard_registry(scale=0.3))
    replies = []

    def session(ctx):
        pm = cluster.pm("ws1").pcb.pid
        reply = yield Send(pm, Message("probe-load"))
        replies.append(reply)
        # A probe demanding more memory than the machine has: still a
        # reply, just not a willing one.
        reply = yield Send(pm, Message("probe-load",
                                       memory_needed=1 << 30))
        replies.append(reply)

    cluster.spawn_session(cluster.workstations[0], session)
    cluster.run(until_us=5_000_000)
    assert len(replies) == 2
    assert replies[0].kind == "load-digest" and replies[0]["willing"]
    assert replies[1].kind == "load-digest" and not replies[1]["willing"]
    assert HostDigest.from_fields(replies[1]["digest"]) is not None


def test_admission_checked_create_declines_when_full():
    """``create-program`` with ``admission=True`` is re-validated by the
    target and politely declined -- with a fresh digest -- when its
    accept policy refuses."""
    cluster = make_cluster(2, full=True, registry=standard_registry(scale=0.3))
    replies = []

    def session(ctx):
        pm = cluster.pm("ws1").pcb.pid
        reply = yield Send(pm, Message(
            "create-program", program="cc68", args=(), remote=True,
            lhid=None, admission=True, memory_needed=1 << 30))
        replies.append(reply)

    cluster.spawn_session(cluster.workstations[0], session)
    cluster.run(until_us=5_000_000)
    assert replies and replies[0].kind == "exec-declined"
    assert HostDigest.from_fields(replies[0]["digest"]) is not None
    assert cluster.pm("ws1").exec_declines == 1


# ----------------------------------------------------------- placed execution

def loaded_ws1_cluster(n=3):
    """ws1 pinned full of long-running programs (its accept policy now
    refuses), everyone else idle."""
    cluster = make_cluster(n, full=True, toggles={"load_cache": True},
                           registry=standard_registry(scale=0.3))
    started = []

    def loader(ctx):
        for _ in range(3):
            handle = yield from exec_program(
                ctx, ExecSpec("longsim", where="ws1"))
            started.append(handle)

    cluster.spawn_session(cluster.workstations[0], loader, name="loader")
    while len(started) < 3 and cluster.sim.peek() is not None:
        cluster.sim.run(until_us=cluster.sim.now + 100_000)
    assert len(started) == 3
    return cluster


def test_stale_best_fit_choice_is_declined_then_retried():
    """CachedBestFit trusts a stale view claiming the full host is the
    best; admission control catches it and the retry lands elsewhere."""
    cluster = loaded_ws1_cluster()
    cache = cluster.host_caches["ws0"]
    sim = cluster.sim
    # Plant a stale-but-fresh-looking digest making full ws1 irresistible.
    cache.observe(HostDigest(
        host="ws1", pm=cluster.pm("ws1").pcb.pid, load=0, remote=0,
        ready=0, memory_free=1 << 22, ts_us=sim.now))
    cache.observe(HostDigest(
        host="ws2", pm=cluster.pm("ws2").pcb.pid, load=0, remote=0,
        ready=0, memory_free=1 << 20, ts_us=sim.now))
    done = []

    def session(ctx):
        handle = yield from exec_program(ctx, ExecSpec(
            "cc68", args=("x.c",), where="*", policy=CachedBestFit()))
        code = yield from wait_program(ctx, handle)
        done.append((handle, code))

    planted_ts = cache.entries["ws1"].ts_us
    cluster.spawn_session(cluster.workstations[0], session)
    while not done and sim.peek() is not None:
        sim.run(until_us=sim.now + 500_000)
    assert done
    handle, code = done[0]
    assert code == 0
    assert handle.host == "ws2"
    assert handle.attempts == 2
    assert cluster.pm("ws1").exec_declines == 1
    # The decline's piggy-backed digest displaced the planted stale view.
    assert cache.entries["ws1"].ts_us > planted_ts


def test_crashed_best_fit_choice_times_out_then_retried():
    """A fresh-looking cache entry for a dead host: the create-program
    send times out, the host is dropped from the view, and the retry
    lands on a live one."""
    cluster = make_cluster(3, full=True, toggles={"load_cache": True},
                           registry=standard_registry(scale=0.3))
    sim = cluster.sim
    cache = cluster.host_caches["ws0"]
    dead_pm = cluster.pm("ws1").pcb.pid
    cluster.station("ws1").kernel.crash()
    del cluster.program_managers["ws1"]
    cache.observe(HostDigest(
        host="ws1", pm=dead_pm, load=0, remote=0, ready=0,
        memory_free=1 << 22, ts_us=sim.now))
    cache.observe(HostDigest(
        host="ws2", pm=cluster.pm("ws2").pcb.pid, load=0, remote=0,
        ready=0, memory_free=1 << 20, ts_us=sim.now))
    done = []

    def session(ctx):
        handle = yield from exec_program(ctx, ExecSpec(
            "cc68", args=("x.c",), where="*", policy=CachedBestFit()))
        code = yield from wait_program(ctx, handle)
        done.append((handle, code))

    cluster.spawn_session(cluster.workstations[0], session)
    cluster.run(until_us=sim.now + 120_000_000)
    assert done
    handle, code = done[0]
    assert code == 0
    assert handle.host == "ws2"
    assert "ws1" not in cache.entries  # dropped on the timeout


def test_randomk_cold_cache_falls_back_and_warms_whole_view():
    """An empty cache degrades to the paper's multicast -- and the
    straggler replies (GetReplies) warm the entire view in one shot."""
    cluster = make_cluster(4, full=True, toggles={"load_cache": True},
                           registry=standard_registry(scale=0.3))
    cache = cluster.host_caches["ws0"]
    cache.entries.clear()
    done = []

    def session(ctx):
        handle = yield from exec_program(ctx, ExecSpec(
            "cc68", args=("x.c",), where="*", policy=RandomK(k=2)))
        code = yield from wait_program(ctx, handle)
        done.append(code)

    cluster.spawn_session(cluster.workstations[0], session)
    cluster.run(until_us=cluster.sim.now + 120_000_000)
    assert done == [0]
    # Every willing host answered the one multicast; all were folded in.
    assert len(cache.entries) >= 3


def test_probe_placement_toggle_selects_randomk_by_default():
    """With ``PLACEMENT.probe_placement`` on and no explicit policy, a
    plain ``@ *`` spec resolves to cached RandomK probing."""
    cluster = make_cluster(
        3, full=True,
        toggles={"load_cache": True, "probe_placement": True},
        registry=standard_registry(scale=0.3))
    # Warm the view so the policy probes rather than falling back.
    cluster.run(until_us=3_000_000)
    before = sum(pm.selection_queries
                 for pm in cluster.program_managers.values())
    done = []

    def session(ctx):
        handle = yield from exec_program(ctx, ExecSpec("cc68", args=("x.c",),
                                                       where="*"))
        code = yield from wait_program(ctx, handle)
        done.append((handle, code))

    cluster.spawn_session(cluster.workstations[0], session)
    cluster.run(until_us=cluster.sim.now + 120_000_000)
    assert done and done[0][1] == 0
    probes = sum(pm.selection_queries
                 for pm in cluster.program_managers.values()) - before
    # k=3 capped at the fresh-idle candidate count; never a multicast.
    assert 1 <= probes <= 3


# ------------------------------------------------------------- anti-entropy

def test_anti_entropy_keeps_idle_view_fresh():
    cluster = make_cluster(3, full=True, toggles={"load_cache": True},
                           registry=standard_registry(scale=0.3))
    cache = cluster.host_caches["ws0"]
    cluster.run(until_us=8_000_000)
    assert cache.stats.refreshes > 0
    fresh = {d.host for d in cache.fresh_entries()}
    assert fresh == {"ws0", "ws1", "ws2"}
    # Refresh traffic is accounted separately from selection traffic.
    assert sum(pm.refresh_queries
               for pm in cluster.program_managers.values()) > 0
    assert sum(pm.selection_queries
               for pm in cluster.program_managers.values()) == 0


def test_anti_entropy_recovers_view_after_reboot():
    """A rebooted workstation gets a fresh manager pid; the daemon's
    re-resolved roster picks it up instead of probing the ghost."""
    cluster = make_cluster(3, full=True, toggles={"load_cache": True},
                           registry=standard_registry(scale=0.3))
    cache = cluster.host_caches["ws0"]
    cluster.run(until_us=8_000_000)
    old_pm = cache.entries["ws1"].pm
    cluster.sim.strict = False
    cluster.reboot_workstation("ws1")
    cluster.run(until_us=cluster.sim.now + 10_000_000)
    assert cache.fresh_digest("ws1") is not None
    assert cache.entries["ws1"].pm != old_pm


def test_reboot_reinstalls_cache_on_owner():
    cluster = make_cluster(3, full=True, toggles={"load_cache": True},
                           registry=standard_registry(scale=0.3))
    first = cluster.host_caches["ws1"]
    cluster.sim.strict = False
    cluster.reboot_workstation("ws1")
    assert cluster.host_caches["ws1"] is not first
    cluster.run(until_us=cluster.sim.now + 8_000_000)
    assert cluster.host_caches["ws1"].stats.refreshes > 0


def test_no_cache_daemons_without_toggle():
    cluster = make_cluster(2, full=True,
                           registry=standard_registry(scale=0.3))
    assert cluster.host_caches == {}
    cluster.run(until_us=5_000_000)
    assert sum(pm.refresh_queries
               for pm in cluster.program_managers.values()) == 0
