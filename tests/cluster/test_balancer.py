"""Tests for the preemption-based load balancer (paper §6 extension)."""

import pytest

from repro.cluster import build_cluster
from repro.cluster.balancer import BalancerPolicy, LoadBalancer, install_load_balancer
from repro.cluster.monitor import ClusterMonitor
from repro.execution import exec_program, wait_for_program
from repro.workloads import standard_registry


def make_loaded_cluster(n=4, jobs=3, seed=0, scale=1.0):
    """All jobs piled onto ws1 (pinned), the rest of the cluster idle."""
    cluster = build_cluster(n_workstations=n, seed=seed,
                            registry=standard_registry(scale=scale))
    holders = []

    def session(ctx, holder):
        pid, pm = yield from exec_program(ctx, "longsim", where="ws1")
        holder["pid"] = pid
        code = yield from wait_for_program(pm, pid)
        holder["code"] = code

    for i in range(jobs):
        holder = {}
        holders.append(holder)
        cluster.spawn_session(cluster.workstations[0],
                              lambda ctx, h=holder: session(ctx, h),
                              name=f"job{i}")
    while not all("pid" in h for h in holders) and cluster.sim.peek() is not None:
        cluster.sim.run(until_us=cluster.sim.now + 100_000)
    return cluster, holders


def test_balancer_spreads_piled_up_jobs():
    cluster, holders = make_loaded_cluster(jobs=3)
    balancer = install_load_balancer(
        cluster, "ws0",
        BalancerPolicy(interval_us=1_000_000, overload_threshold=1,
                       underload_threshold=1, max_moves_per_round=1),
    )
    cluster.run(until_us=cluster.sim.now + 30_000_000)
    monitor = ClusterMonitor(cluster)
    hosts = {str(h["pid"]): monitor.host_of_lhid(h["pid"].logical_host_id)
             for h in holders if "code" not in h}
    # The pile on ws1 was spread out.
    remote_counts = {}
    for host in hosts.values():
        if host is not None:
            remote_counts[host] = remote_counts.get(host, 0) + 1
    assert balancer.stats.moves_succeeded >= 2
    assert all(count <= 2 for count in remote_counts.values())


def test_balanced_jobs_still_complete():
    cluster, holders = make_loaded_cluster(jobs=3, scale=0.3)
    install_load_balancer(
        cluster, "ws0",
        BalancerPolicy(interval_us=1_000_000, overload_threshold=1),
    )
    cluster.run(until_us=600_000_000)
    assert all(h.get("code") == 0 for h in holders)


def test_balancer_idle_when_cluster_is_balanced():
    cluster = build_cluster(n_workstations=3,
                            registry=standard_registry(scale=0.3))
    balancer = install_load_balancer(cluster, "ws0")
    cluster.run(until_us=15_000_000)
    assert balancer.stats.rounds >= 5
    assert balancer.stats.moves_requested == 0


def test_balancer_stop():
    cluster = build_cluster(n_workstations=2,
                            registry=standard_registry(scale=0.3))
    balancer = install_load_balancer(cluster, "ws0")
    cluster.run(until_us=5_000_000)
    balancer.stop()
    cluster.run(until_us=10_000_000)
    rounds = balancer.stats.rounds
    cluster.run(until_us=20_000_000)
    assert balancer.stats.rounds == rounds  # loop exited


def test_balancer_respects_moves_per_round():
    cluster, holders = make_loaded_cluster(jobs=3)
    balancer = install_load_balancer(
        cluster, "ws0",
        BalancerPolicy(interval_us=5_000_000, overload_threshold=1,
                       max_moves_per_round=1),
    )
    cluster.run(until_us=cluster.sim.now + 6_000_000)
    assert balancer.stats.moves_requested <= 2


def test_survey_drops_unreachable_host_and_continues():
    """A crashed host must cost the survey one timeout, not the round:
    its answer is dropped, everyone else's still counts, and the pile on
    ws1 gets spread regardless (the serial-survey hang this guards
    against stalled the whole daemon on the first dead machine)."""
    cluster, holders = make_loaded_cluster(n=5, jobs=3)
    cluster.sim.strict = False
    cluster.station("ws4").kernel.crash()  # idle bystander dies
    balancer = install_load_balancer(
        cluster, "ws0",
        BalancerPolicy(interval_us=1_000_000, overload_threshold=1,
                       underload_threshold=1, max_moves_per_round=1),
    )
    cluster.run(until_us=cluster.sim.now + 30_000_000)
    assert balancer.stats.unreachable >= 1
    assert balancer.stats.rounds >= 3
    assert balancer.stats.moves_succeeded >= 2


def test_survey_answers_from_placement_cache():
    """With the placement plane on, fresh cached digests answer the
    remote-count question without a query message, and the balancer
    still spreads the pile from that view."""
    from repro._fastpath import PLACEMENT

    PLACEMENT.load_cache = True  # conftest hygiene fixture restores
    cluster, holders = make_loaded_cluster(jobs=3)
    balancer = install_load_balancer(
        cluster, "ws0",
        BalancerPolicy(interval_us=1_000_000, overload_threshold=1,
                       underload_threshold=1, max_moves_per_round=1),
    )
    cluster.run(until_us=cluster.sim.now + 30_000_000)
    assert balancer.stats.cache_hits >= 1
    assert balancer.stats.moves_succeeded >= 2


def test_balancer_survives_workstation_reboot():
    """The roster is re-resolved every round, so a rebooted host's fresh
    manager pid is picked up and the daemon keeps running instead of
    surveying the dead pid forever."""
    cluster = build_cluster(n_workstations=3,
                            registry=standard_registry(scale=0.3))
    balancer = install_load_balancer(
        cluster, "ws0", BalancerPolicy(interval_us=1_000_000))
    cluster.run(until_us=5_000_000)
    old_pid = cluster.program_managers["ws1"].pcb.pid
    cluster.sim.strict = False
    cluster.reboot_workstation("ws1")
    rounds_before = balancer.stats.rounds
    cluster.run(until_us=cluster.sim.now + 10_000_000)
    assert cluster.program_managers["ws1"].pcb.pid != old_pid
    assert balancer.stats.rounds >= rounds_before + 5
    # At most the in-flight round saw the dying manager.
    assert balancer.stats.unreachable <= 1


def test_balancer_and_owner_reclaim_coexist():
    """A reclaim and the balancer may target the same host at once; the
    in-progress guard serializes them and everything still completes."""
    from repro.migration.migrateprog import migrate_all_remote

    cluster, holders = make_loaded_cluster(jobs=3, scale=0.3)
    install_load_balancer(
        cluster, "ws0",
        BalancerPolicy(interval_us=800_000, overload_threshold=0,
                       underload_threshold=1, max_moves_per_round=2),
    )
    outcomes = []

    def reclaim(ctx):
        from repro.kernel.process import Delay

        yield Delay(1_000_000)
        pm_pid = cluster.pm("ws1").pcb.pid
        results = yield from migrate_all_remote(pm_pid)
        outcomes.append(results)

    cluster.spawn_session(cluster.station("ws1"), reclaim, name="reclaim")
    cluster.run(until_us=600_000_000)
    assert all(h.get("code") == 0 for h in holders)
    assert outcomes  # the reclaim ran (possibly finding some refusals)
