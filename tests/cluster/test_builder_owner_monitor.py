"""Unit tests for cluster assembly, the owner model, and the monitor."""

import pytest

from repro.cluster import Owner, OwnerActivityModel, build_cluster
from repro.cluster.monitor import ClusterMonitor
from repro.errors import SimulationError
from repro.execution import ProgramRegistry, exec_program
from repro.workloads import standard_registry


class TestBuilder:
    def test_builds_requested_topology(self):
        cluster = build_cluster(n_workstations=5, n_file_servers=2,
                                registry=ProgramRegistry())
        assert len(cluster.workstations) == 5
        assert len(cluster.server_machines) == 2
        assert len(cluster.file_servers) == 2
        assert len(cluster.name_servers) == 1
        assert len(cluster.displays) == 5
        assert len(cluster.program_managers) == 5

    def test_needs_at_least_one_of_each(self):
        with pytest.raises(SimulationError):
            build_cluster(n_workstations=0)
        with pytest.raises(SimulationError):
            build_cluster(n_file_servers=0)

    def test_station_lookup(self):
        cluster = build_cluster(n_workstations=2, registry=ProgramRegistry())
        assert cluster.station("ws1").name == "ws1"
        with pytest.raises(SimulationError):
            cluster.station("ws9")

    def test_every_kernel_knows_registry_and_file_server(self):
        cluster = build_cluster(n_workstations=3, registry=ProgramRegistry())
        fs_pid = cluster.file_servers[0].pcb.pid
        for machine in cluster.workstations + cluster.server_machines:
            assert machine.kernel.program_registry is cluster.registry
            assert machine.kernel.file_server_pid == fs_pid

    def test_unique_addresses(self):
        cluster = build_cluster(n_workstations=4, registry=ProgramRegistry())
        addrs = [ws.address for ws in cluster.workstations + cluster.server_machines]
        assert len(set(addrs)) == len(addrs)

    def test_context_has_standard_name_cache(self):
        cluster = build_cluster(n_workstations=2, registry=ProgramRegistry())
        seen = {}

        def session(ctx):
            seen["ctx"] = ctx
            yield from ()

        cluster.spawn_session(cluster.workstations[1], session)
        cluster.run(until_us=1_000_000)
        ctx = seen["ctx"]
        assert "file-server" in ctx.name_cache
        assert "name-server" in ctx.name_cache
        assert ctx.home == "ws1"
        assert ctx.sim is cluster.sim

    def test_idle_fraction_starts_high(self):
        cluster = build_cluster(n_workstations=3, registry=ProgramRegistry())
        cluster.run(until_us=5_000_000)
        assert cluster.idle_fraction() > 0.95


class TestOwner:
    def test_arrive_marks_station_active(self):
        cluster = build_cluster(n_workstations=1, registry=ProgramRegistry())
        owner = Owner(cluster.workstations[0])
        owner.arrive()
        assert cluster.workstations[0].owner_active
        assert owner.pcb is not None

    def test_depart_clears_flag_and_kills_editor(self):
        cluster = build_cluster(n_workstations=1, registry=ProgramRegistry())
        owner = Owner(cluster.workstations[0])
        pcb = owner.arrive()
        cluster.run(until_us=2_000_000)
        owner.depart()
        assert not cluster.workstations[0].owner_active
        assert not pcb.alive

    def test_editor_uses_modest_cpu(self):
        """The paper: workstations are >80% idle even at peak (most users
        are editing)."""
        cluster = build_cluster(n_workstations=1, registry=ProgramRegistry())
        owner = Owner(cluster.workstations[0])
        owner.arrive()
        cluster.run(until_us=20_000_000)
        busy_fraction = cluster.workstations[0].kernel.scheduler.busy_us / 20_000_000
        assert busy_fraction < 0.2

    def test_burst_latencies_recorded(self):
        cluster = build_cluster(n_workstations=1, registry=ProgramRegistry())
        owner = Owner(cluster.workstations[0])
        owner.arrive()
        cluster.run(until_us=10_000_000)
        assert len(owner.burst_latencies) > 5
        assert owner.mean_interference_us() >= 0

    def test_interference_window_filter(self):
        cluster = build_cluster(n_workstations=1, registry=ProgramRegistry())
        owner = Owner(cluster.workstations[0])
        owner.arrive()
        cluster.run(until_us=10_000_000)
        assert owner.worst_interference_us(since_us=10_000_000) == 0

    def test_activity_model_defaults(self):
        model = OwnerActivityModel()
        assert model.burst_us < model.think_us


class TestMonitor:
    def make_busy_cluster(self):
        cluster = build_cluster(n_workstations=3,
                                registry=standard_registry(scale=0.5))
        state = {}

        def session(ctx):
            pid, pm = yield from exec_program(ctx, "longsim", where="ws1")
            state["pid"] = pid

        cluster.spawn_session(cluster.workstations[0], session)
        while "pid" not in state and cluster.sim.peek() is not None:
            cluster.sim.run(until_us=cluster.sim.now + 100_000)
        return cluster, state

    def test_programs_listing(self):
        cluster, state = self.make_busy_cluster()
        monitor = ClusterMonitor(cluster)
        rows = monitor.programs()
        names = {row.name for row in rows}
        assert "longsim" in names
        remote_rows = [r for r in rows if r.remote]
        assert remote_rows and remote_rows[0].host == "ws1"

    def test_programs_filtered_by_host(self):
        cluster, state = self.make_busy_cluster()
        monitor = ClusterMonitor(cluster)
        assert all(r.host == "ws1" for r in monitor.programs(host="ws1"))
        assert monitor.programs(host="ws2") == []

    def test_find_program(self):
        cluster, state = self.make_busy_cluster()
        monitor = ClusterMonitor(cluster)
        row = monitor.find_program("longsim")
        assert row is not None and row.pid == state["pid"]
        assert monitor.find_program("nonesuch") is None

    def test_host_of_lhid(self):
        cluster, state = self.make_busy_cluster()
        monitor = ClusterMonitor(cluster)
        assert monitor.host_of_lhid(state["pid"].logical_host_id) == "ws1"
        assert monitor.host_of_lhid(0x7777) is None

    def test_loads(self):
        cluster, state = self.make_busy_cluster()
        monitor = ClusterMonitor(cluster)
        loads = monitor.loads()
        assert set(loads) == {"ws0", "ws1", "ws2"}
        assert loads["ws1"]["programs"] >= 1

    def test_total_packets_counts(self):
        cluster, state = self.make_busy_cluster()
        monitor = ClusterMonitor(cluster)
        assert monitor.total_packets() > 0

    def test_rows_mark_frozen_processes(self):
        cluster, state = self.make_busy_cluster()
        monitor = ClusterMonitor(cluster)
        kernel = cluster.station("ws1").kernel
        lh = kernel.logical_hosts[state["pid"].logical_host_id]
        row = monitor.find_program("longsim")
        assert row is not None and not row.frozen

        kernel.freeze_logical_host(lh)
        row = monitor.find_program("longsim")
        assert row.frozen
        # A frozen remote program keeps its remote flag and host.
        assert row.remote and row.host == "ws1"

        kernel.unfreeze_logical_host(lh)
        assert not monitor.find_program("longsim").frozen

    def test_rows_distinguish_remote_from_local(self):
        cluster, state = self.make_busy_cluster()
        holder = {}

        def local_session(ctx):
            pid, pm = yield from exec_program(ctx, "longsim")  # home machine
            holder["pid"] = pid

        cluster.spawn_session(cluster.workstations[2], local_session)
        while "pid" not in holder and cluster.sim.peek() is not None:
            cluster.sim.run(until_us=cluster.sim.now + 100_000)
        rows = {r.pid: r for r in ClusterMonitor(cluster).programs()}
        assert rows[state["pid"]].remote        # executed away from home
        assert not rows[holder["pid"]].remote   # executed at home
        assert rows[holder["pid"]].host == "ws2"

    def test_metrics_snapshot_via_monitor(self):
        cluster = build_cluster(n_workstations=3,
                                registry=standard_registry(scale=0.5))
        cluster.sim.metrics.enable()  # before any activity runs
        state = {}

        def session(ctx):
            pid, pm = yield from exec_program(ctx, "longsim", where="ws1")
            state["pid"] = pid

        cluster.spawn_session(cluster.workstations[0], session)
        cluster.run(until_us=2_000_000)
        monitor = ClusterMonitor(cluster)
        snap = monitor.metrics()
        assert snap["cluster"]["sched.context_switches"] > 0
        assert snap["cluster"]["net.tx_packets"] == monitor.total_packets()
        assert snap["per_host"]["ws1"]["ipc.sends"] > 0
        assert "sched.context_switches" in monitor.render_metrics()
