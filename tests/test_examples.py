"""Smoke tests: every example script runs to completion and prints its
headline output.  Examples are documentation that executes; these tests
keep them honest."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, capsys):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "tex: exit 0" in out
    assert "migrateprog" in out
    assert "idle" in out


def test_compile_farm(capsys):
    out = run_example("compile_farm", capsys)
    assert "batch makespan" in out
    assert "sooner" in out


def test_owner_reclaim(capsys):
    out = run_example("owner_reclaim", capsys)
    assert "clear of remote work" in out
    assert "exit 0" in out
    assert "pool of processors" in out


def test_distributed_program(capsys):
    out = run_example("distributed_program", capsys)
    assert "total = 14" in out
    assert "machines did substantial work" in out


def test_fault_injection(capsys):
    out = run_example("fault_injection", capsys)
    assert "migration ok=True" in out
    assert "migration ok=False" in out
    assert "behaved as the paper specifies" in out


def test_load_balancing(capsys):
    out = run_example("load_balancing", capsys)
    assert "preemptive" in out
    assert "faster" in out


def test_remote_debugging(capsys):
    out = run_example("remote_debugging", capsys)
    assert "SAME session" in out
    assert "re-attached after migration: suspended" in out
