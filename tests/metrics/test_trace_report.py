"""Unit and integration tests for the network traffic report."""

import pytest

from repro.ipc import Message
from repro.kernel import Receive, Reply, Send
from repro.metrics import TrafficReport

from tests.helpers import BareCluster


def traced_pair():
    cluster = BareCluster(n=2)
    cluster.sim.trace.enable("net")
    a, b = cluster.stations

    def echo():
        while True:
            sender, msg = yield Receive()
            yield Reply(sender, msg.replying(ok=True))

    _, server = cluster.spawn_program(b, echo(), name="server")
    return cluster, a, b, server


def test_report_counts_kinds_and_paths():
    cluster, a, b, server = traced_pair()

    def client():
        for i in range(3):
            yield Send(server.pid, Message("ping", i=i))

    cluster.spawn_program(a, client(), name="client")
    cluster.run(until_us=10_000_000)
    report = TrafficReport.from_tracer(cluster.sim.trace)
    assert report.by_kind["request"] >= 3
    assert report.by_kind["reply"] >= 3
    assert report.total_packets == sum(report.by_kind.values())
    assert report.between(str(a.address), str(b.address)) >= 6


def test_time_window_filters():
    cluster, a, b, server = traced_pair()

    def client():
        yield Send(server.pid, Message("ping"))

    cluster.spawn_program(a, client(), name="client")
    cluster.run(until_us=10_000_000)
    all_report = TrafficReport.from_tracer(cluster.sim.trace)
    none_report = TrafficReport.from_tracer(cluster.sim.trace,
                                            since_us=10_000_001)
    assert all_report.total_packets > 0
    assert none_report.total_packets == 0


def test_involving_host():
    cluster, a, b, server = traced_pair()

    def client():
        yield Send(server.pid, Message("ping"))

    cluster.spawn_program(a, client(), name="client")
    cluster.run(until_us=10_000_000)
    report = TrafficReport.from_tracer(cluster.sim.trace)
    assert report.involving(str(a.address)) > 0
    assert report.involving("aa:aa:aa:aa:aa:aa") == 0


def test_render_mentions_kinds():
    cluster, a, b, server = traced_pair()

    def client():
        yield Send(server.pid, Message("ping"))

    cluster.spawn_program(a, client(), name="client")
    cluster.run(until_us=10_000_000)
    text = TrafficReport.from_tracer(cluster.sim.trace).render()
    assert "request" in text
    assert "packets" in text


def test_empty_tracer_empty_report():
    cluster = BareCluster(n=1)
    report = TrafficReport.from_tracer(cluster.sim.trace)
    assert report.total_packets == 0
    assert report.kinds() == []
