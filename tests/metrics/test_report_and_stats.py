"""Unit tests for experiment reporting and statistics helpers."""

import pytest

from repro.metrics import (
    ExperimentReport,
    mean,
    percentile,
    register,
    render_all,
    stddev,
)
from repro.metrics.report import REGISTRY, ReportRow


@pytest.fixture(autouse=True)
def clean_registry():
    saved = list(REGISTRY)
    REGISTRY.clear()
    yield
    REGISTRY[:] = saved


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        assert mean([]) == 0.0

    def test_stddev(self):
        assert stddev([5, 5, 5]) == 0.0
        assert stddev([1]) == 0.0
        assert stddev([0, 2]) == 1.0

    def test_percentile(self):
        values = list(range(1, 101))
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100
        assert percentile(values, 50) in (50, 51)  # nearest-rank median
        assert percentile([], 50) == 0.0
        with pytest.raises(ValueError):
            percentile([1], 150)

    def test_percentile_edge_ranks(self):
        # A single observation answers every percentile.
        for pct in (0, 50, 100):
            assert percentile([42], pct) == 42
        # Two values: the rank rounds to the nearer endpoint.
        assert percentile([10, 20], 0) == 10
        assert percentile([10, 20], 100) == 20
        assert percentile([10, 20], 49) == 10
        assert percentile([10, 20], 51) == 20
        # Input order must not matter.
        assert percentile([30, 10, 20], 100) == 30
        with pytest.raises(ValueError):
            percentile([1], -1)

    def test_stddev_degenerate_inputs(self):
        # Fewer than two observations have no spread, not an error.
        assert stddev([]) == 0.0
        assert stddev([123.4]) == 0.0
        # Population (not sample) stddev: n in the denominator.
        assert stddev([2, 4, 4, 4, 5, 5, 7, 9]) == 2.0

    def test_mean_single_value(self):
        assert mean([7]) == 7.0


class TestReportRow:
    def test_ratio(self):
        assert ReportRow("m", "ms", 10, 12).ratio == pytest.approx(1.2)
        assert ReportRow("m", "ms", None, 12).ratio is None
        assert ReportRow("m", "ms", 0, 12).ratio is None
        assert ReportRow("m", "ms", 10, None).ratio is None


class TestExperimentReport:
    def test_render_contains_rows_and_ratio(self):
        report = ExperimentReport("EX", "example")
        report.add("latency", "ms", 23.0, 22.6)
        text = report.render()
        assert "EX: example" in text
        assert "latency" in text
        assert "0.98x" in text

    def test_missing_values_render_as_dash(self):
        report = ExperimentReport("EX", "example")
        report.add("count", "n", None, 5)
        text = report.render()
        assert "-" in text

    def test_notes_rendered(self):
        report = ExperimentReport("EX", "example").note("a footnote")
        assert "a footnote" in report.render()

    def test_register_replaces_same_id(self):
        a = ExperimentReport("E1", "first")
        b = ExperimentReport("E1", "second")
        register(a)
        register(b)
        assert len(REGISTRY) == 1
        assert REGISTRY[0].title == "second"

    def test_render_all_joins_reports(self):
        register(ExperimentReport("E1", "one").add("m", "u", 1, 1))
        register(ExperimentReport("E2", "two").add("m", "u", 2, 2))
        text = render_all()
        assert "E1: one" in text and "E2: two" in text

    def test_number_formatting(self):
        report = ExperimentReport("EX", "fmt")
        report.add("big", "us", 123456.0, 123456.0)
        report.add("small", "x", 0.123, 0.123)
        report.add("int", "n", 1234, 1234)
        text = report.render()
        assert "123,456" in text
        assert "0.123" in text
        assert "1,234" in text

    def test_empty_report_renders(self):
        assert "empty" in ExperimentReport("E0", "empty").render()
